package sim

import (
	"math"
	"testing"

	"ftclust/internal/graph"
)

// floodMax is a toy program: every node floods the largest node ID it has
// seen for a fixed number of rounds; afterwards every node in a connected
// graph of diameter ≤ rounds knows the global maximum.
type floodMax struct {
	rounds int
	best   graph.NodeID
	init   bool
}

type idMsg struct{ ID graph.NodeID }

func (idMsg) SizeBits(n int) int { return IDBits(n) }

func (f *floodMax) Step(ctx Context) bool {
	if !f.init {
		f.best = ctx.ID()
		f.init = true
	}
	for _, env := range ctx.Inbox() {
		m := env.Msg.(idMsg)
		if m.ID > f.best {
			f.best = m.ID
		}
	}
	if ctx.Round() < f.rounds {
		ctx.Broadcast(idMsg{f.best})
		return false
	}
	return true
}

// coinFlipper consumes per-node randomness so engine-equivalence tests
// exercise the RNG plumbing.
type coinFlipper struct {
	rounds int
	flips  []bool
}

func (c *coinFlipper) Step(ctx Context) bool {
	if ctx.Round() > c.rounds {
		return true // quiescent after termination
	}
	c.flips = append(c.flips, ctx.Rand().Intn(2) == 1)
	if ctx.Round() < c.rounds {
		ctx.Broadcast(Flag{Kind: 1})
		return false
	}
	return true
}

func TestFloodMaxReachesEveryone(t *testing.T) {
	g := graph.Ring(12) // diameter 6
	nw := New(g, WithSeed(1))
	res, err := nw.Run(func(graph.NodeID) Program { return &floodMax{rounds: 6} }, 100)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for v, p := range res.Programs {
		if got := p.(*floodMax).best; got != 11 {
			t.Errorf("node %d best = %d, want 11", v, got)
		}
	}
	if res.Metrics.Rounds != 7 {
		t.Errorf("Rounds = %d, want 7", res.Metrics.Rounds)
	}
}

func TestMetricsAccounting(t *testing.T) {
	g := graph.Complete(4) // every broadcast = 3 messages
	nw := New(g, WithSeed(1))
	res, err := nw.Run(func(graph.NodeID) Program { return &floodMax{rounds: 2} }, 10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := res.Metrics
	// Rounds 0 and 1 broadcast (round 2 is the final silent step): 2 * 4 * 3.
	if m.Messages != 24 {
		t.Errorf("Messages = %d, want 24", m.Messages)
	}
	if m.MaxMessageBits != IDBits(4) {
		t.Errorf("MaxMessageBits = %d, want %d", m.MaxMessageBits, IDBits(4))
	}
	if m.TotalBits != 24*int64(IDBits(4)) {
		t.Errorf("TotalBits = %d", m.TotalBits)
	}
	if len(m.MessagesPerRound) != m.Rounds {
		t.Errorf("MessagesPerRound has %d entries for %d rounds", len(m.MessagesPerRound), m.Rounds)
	}
	if r := m.MaxBitsPerLogN(4); r != float64(IDBits(4))/2 {
		t.Errorf("MaxBitsPerLogN = %v", r)
	}
}

func TestSendToNonNeighborPanics(t *testing.T) {
	g := graph.Path(3)
	nw := New(g, WithSeed(1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for send to non-neighbor")
		}
	}()
	_, _ = nw.Run(func(v graph.NodeID) Program {
		return programFunc(func(ctx Context) bool {
			if ctx.ID() == 0 {
				ctx.Send(2, Flag{})
			}
			return true
		})
	}, 5)
}

type programFunc func(Context) bool

func (f programFunc) Step(ctx Context) bool { return f(ctx) }

func TestErrNoProgress(t *testing.T) {
	g := graph.Ring(4)
	nw := New(g, WithSeed(1))
	_, err := nw.Run(func(graph.NodeID) Program {
		return programFunc(func(Context) bool { return false })
	}, 8)
	if err != ErrNoProgress {
		t.Errorf("err = %v, want ErrNoProgress", err)
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	// Path 0-1-2 with node 1 crashing at round 1: node 0's flood can never
	// reach node 2.
	g := graph.Path(3)
	nw := New(g, WithSeed(1), WithCrashes(Crashes(1, 1)))
	res, err := nw.Run(func(graph.NodeID) Program { return &floodMax{rounds: 6} }, 20)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Node 2 can still have received 1's initial broadcast (sent round 0,
	// but 1 crashes at round 1, before delivery of round-0 sends happens
	// at round 1... deliveries from round 0 happen while 1 is alive in
	// round 0, so 2 sees ID 1 but never ID... crash at round 1 means
	// round-0 messages were already sent and are delivered.
	best2 := res.Programs[2].(*floodMax).best
	if best2 != 2 {
		t.Errorf("node 2 best = %d, want 2 (0's flood blocked by crash)", best2)
	}
	best0 := res.Programs[0].(*floodMax).best
	if best0 != 1 {
		t.Errorf("node 0 best = %d, want 1 (heard 1 before crash)", best0)
	}
}

func TestDropAllMessages(t *testing.T) {
	g := graph.Complete(5)
	nw := New(g, WithSeed(3), WithDropProb(1.0))
	res, err := nw.Run(func(graph.NodeID) Program { return &floodMax{rounds: 3} }, 10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for v, p := range res.Programs {
		if got := p.(*floodMax).best; got != graph.NodeID(v) {
			t.Errorf("node %d best = %d, want itself", v, got)
		}
	}
	if res.Metrics.Dropped == 0 {
		t.Error("expected dropped messages")
	}
	if res.Metrics.Messages != 0 {
		t.Errorf("Messages = %d, want 0", res.Metrics.Messages)
	}
}

func TestPartialDrops(t *testing.T) {
	g := graph.Complete(6)
	nw := New(g, WithSeed(5), WithDropProb(0.5))
	res, err := nw.Run(func(graph.NodeID) Program { return &floodMax{rounds: 4} }, 10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := res.Metrics
	if m.Dropped == 0 {
		t.Error("expected some drops at p=0.5")
	}
	if m.Messages == 0 {
		t.Error("expected some deliveries at p=0.5")
	}
	// TotalBits counts sent messages, delivered or not.
	if m.TotalBits != (m.Messages+m.Dropped)*int64(IDBits(6)) {
		t.Errorf("TotalBits = %d inconsistent with %d sent", m.TotalBits, m.Messages+m.Dropped)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := graph.Gnp(60, 0.1, 5)
	mk := func(graph.NodeID) Program { return &coinFlipper{rounds: 8} }
	seq, err := New(g, WithSeed(9)).Run(mk, 50)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	par, err := New(g, WithSeed(9)).RunParallel(mk, 50)
	if err != nil {
		t.Fatalf("RunParallel: %v", err)
	}
	if par.Metrics.Rounds != seq.Metrics.Rounds ||
		par.Metrics.Messages != seq.Metrics.Messages ||
		par.Metrics.TotalBits != seq.Metrics.TotalBits ||
		par.Metrics.MaxMessageBits != seq.Metrics.MaxMessageBits {
		t.Errorf("metrics diverge: seq %+v par %+v", seq.Metrics, par.Metrics)
	}
	for v := range seq.Programs {
		a := seq.Programs[v].(*coinFlipper).flips
		b := par.Programs[v].(*coinFlipper).flips
		if len(a) != len(b) {
			t.Fatalf("node %d: flip counts differ", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d flip %d differs", v, i)
			}
		}
	}
}

func TestAsyncMatchesSync(t *testing.T) {
	g := graph.Gnp(40, 0.15, 6)
	mk := func(graph.NodeID) Program { return &floodMax{rounds: 10} }
	syn, err := New(g, WithSeed(4)).Run(mk, 50)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	asy, err := New(g, WithSeed(4)).RunAsync(mk, 50)
	if err != nil {
		t.Fatalf("RunAsync: %v", err)
	}
	if syn.Metrics.Rounds != asy.Metrics.Rounds {
		t.Errorf("rounds: sync %d async %d", syn.Metrics.Rounds, asy.Metrics.Rounds)
	}
	for v := range syn.Programs {
		a := syn.Programs[v].(*floodMax).best
		b := asy.Programs[v].(*floodMax).best
		if a != b {
			t.Errorf("node %d: sync best %d async best %d", v, a, b)
		}
	}
}

func TestAsyncMatchesSyncWithRandomness(t *testing.T) {
	g := graph.Grid(6, 6)
	mk := func(graph.NodeID) Program { return &coinFlipper{rounds: 7} }
	syn, err := New(g, WithSeed(11)).Run(mk, 50)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	asy, err := New(g, WithSeed(11)).RunAsync(mk, 50)
	if err != nil {
		t.Fatalf("RunAsync: %v", err)
	}
	for v := range syn.Programs {
		a := syn.Programs[v].(*coinFlipper).flips
		b := asy.Programs[v].(*coinFlipper).flips
		if len(a) != len(b) {
			t.Fatalf("node %d: %d vs %d flips", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d flip %d differs", v, i)
			}
		}
	}
}

func TestAsyncRejectsFailures(t *testing.T) {
	g := graph.Ring(4)
	if _, err := New(g, WithCrashes(Crashes(1, 0))).RunAsync(func(graph.NodeID) Program {
		return &floodMax{rounds: 1}
	}, 10); err == nil {
		t.Error("async with crashes should error")
	}
	if _, err := New(g, WithDropProb(0.5)).RunAsync(func(graph.NodeID) Program {
		return &floodMax{rounds: 1}
	}, 10); err == nil {
		t.Error("async with drops should error")
	}
}

func TestDistances(t *testing.T) {
	pts := []Point{{0, 0}, {0.6, 0}, {0.6, 0.8}}
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	nw := New(g, WithSeed(1), WithDistances(pts))
	var d01, d12, dNon float64
	_, err := nw.Run(func(v graph.NodeID) Program {
		return programFunc(func(ctx Context) bool {
			if ctx.ID() == 1 {
				d01 = ctx.Dist(0)
				d12 = ctx.Dist(2)
			}
			if ctx.ID() == 0 {
				dNon = ctx.Dist(2) // not a neighbor
			}
			return true
		})
	}, 5)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(d01-0.6) > 1e-12 || math.Abs(d12-0.8) > 1e-12 {
		t.Errorf("distances = %v, %v", d01, d12)
	}
	if !math.IsNaN(dNon) {
		t.Errorf("non-neighbor distance = %v, want NaN", dNon)
	}
}

func TestBitHelpers(t *testing.T) {
	tests := []struct {
		max  int
		want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {255, 8}, {256, 9},
	}
	for _, tt := range tests {
		if got := BitsForCount(tt.max); got != tt.want {
			t.Errorf("BitsForCount(%d) = %d, want %d", tt.max, got, tt.want)
		}
	}
	if got := IDBits(1024); got != 10 {
		t.Errorf("IDBits(1024) = %d, want 10", got)
	}
	if got := RandIDBits(1024); got != 42 {
		t.Errorf("RandIDBits(1024) = %d, want 42", got)
	}
	if got := FixedPointBits(1024); got != 26 {
		t.Errorf("FixedPointBits(1024) = %d, want 26", got)
	}
}

func TestIsolatedNodeTerminates(t *testing.T) {
	g := graph.NewBuilder(3).Build() // three isolated nodes
	res, err := New(g, WithSeed(1)).Run(func(graph.NodeID) Program {
		return &floodMax{rounds: 2}
	}, 10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Metrics.Rounds != 3 {
		t.Errorf("Rounds = %d, want 3", res.Metrics.Rounds)
	}
	asy, err := New(g, WithSeed(1)).RunAsync(func(graph.NodeID) Program {
		return &floodMax{rounds: 2}
	}, 10)
	if err != nil {
		t.Fatalf("RunAsync: %v", err)
	}
	if asy.Metrics.Rounds != 3 {
		t.Errorf("async Rounds = %d, want 3", asy.Metrics.Rounds)
	}
}
