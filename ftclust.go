// Package ftclust is a library for fault-tolerant clustering in ad hoc and
// sensor networks, reproducing Kuhn, Moscibroda and Wattenhofer,
// "Fault-Tolerant Clustering in Ad Hoc and Sensor Networks" (ICDCS 2006).
//
// A k-fold dominating set of a graph G = (V, E) is a subset S ⊆ V such
// that every node outside S has at least k neighbors in S; it is the
// fault-tolerant generalization of dominating-set clustering: any k-1
// cluster heads may fail and every sensor still has a live head in range.
//
// The package offers the paper's two distributed algorithms behind one
// façade:
//
//   - SolveKMDS runs the general-graph pipeline (Algorithm 1, a
//     distributed LP approximation with a checkable dual certificate,
//     followed by Algorithm 2, distributed randomized rounding). It takes
//     O(t²) communication rounds and guarantees an
//     O(t·Δ^(2/t)·log Δ)-approximation in expectation.
//   - SolveUDGKMDS runs the unit-disk-graph algorithm (Algorithm 3):
//     O(log log n) rounds and an expected O(1)-approximation when nodes
//     are deployed in the plane and can sense distances.
//
// Both use O(log n)-bit messages. The heavy lifting lives in internal
// packages (internal/core, internal/udg, internal/sim, …); this package
// re-exports the types needed to use them and keeps the API small.
package ftclust

import (
	"context"
	"errors"
	"fmt"

	"ftclust/internal/cds"
	"ftclust/internal/core"
	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/obs"
	"ftclust/internal/udg"
	"ftclust/internal/verify"
)

// Sentinel errors returned by the solvers' input validation; match them
// with errors.Is. Wrapped variants carry the offending values.
var (
	// ErrBadK reports an out-of-range fault-tolerance parameter: k < 1,
	// or k larger than the number of nodes (no graph can supply more than
	// n dominators, even under the capped-demand convention).
	ErrBadK = errors.New("ftclust: invalid k")
	// ErrEmptyGraph reports a nil graph, a graph with zero nodes, or an
	// empty deployment.
	ErrEmptyGraph = errors.New("ftclust: nil or empty graph")
	// ErrCanceled reports that a solve was abandoned because the context
	// installed with WithContext was canceled or its deadline expired.
	ErrCanceled = core.ErrCanceled
)

// validateInstance applies the common solver preconditions.
func validateInstance(n, k int) error {
	if n == 0 {
		return ErrEmptyGraph
	}
	if k < 1 {
		return fmt.Errorf("%w: k must be ≥ 1, got %d", ErrBadK, k)
	}
	if k > n {
		return fmt.Errorf("%w: k = %d exceeds the node count %d", ErrBadK, k, n)
	}
	return nil
}

// Re-exported aliases so callers outside this module can name the types
// returned by the API without importing internal packages.
type (
	// Graph is a simple undirected graph; see NewGraph and GenerateGraph.
	Graph = graph.Graph
	// NodeID identifies a node (0 … n-1).
	NodeID = graph.NodeID
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Point is a node location in the plane for UDG deployments.
	Point = geom.Point
	// Convention selects the feasibility definition used by Verify.
	Convention = verify.Convention
	// SolveObserver receives per-phase and per-solve callbacks from
	// SolveKMDS; install one with WithObserver. See WithObserver for the
	// cost model and threading contract.
	SolveObserver = obs.SolveObserver
	// SolvePhaseInfo describes one completed solver phase (name, wall
	// time, communication rounds, approximate allocations).
	SolvePhaseInfo = obs.PhaseInfo
	// SolveStats summarizes a finished solve: LP rounds, rounding passes,
	// κ, the certified lower bound and the dual gap.
	SolveStats = obs.SolveStats
)

// Feasibility conventions (see the verify package for exact semantics).
const (
	// Standard is the Section 1 definition: members of S are exempt.
	Standard = verify.Standard
	// ClosedPP is the (PP) convention of Section 4.1: every node needs
	// k coverage in its closed neighborhood. ClosedPP implies Standard.
	ClosedPP = verify.ClosedPP
)

// NewGraph builds a graph with n nodes from an edge list.
func NewGraph(n int, edges []Edge) (*Graph, error) {
	return graph.FromEdges(n, edges)
}

// GenerateGraph builds a random graph from a named family: "gnp",
// "regular", "grid", "tree", "powerlaw" or "ring"; d is the average-degree
// knob (interpreted per family).
func GenerateGraph(family string, n int, d float64, seed int64) (*Graph, error) {
	return graph.Generate(graph.Family(family), n, d, seed)
}

// UniformDeployment places n sensor nodes uniformly at random in a
// side × side square.
func UniformDeployment(n int, side float64, seed int64) []Point {
	return geom.UniformPoints(n, side, seed)
}

// UnitDiskGraph builds the unit disk graph of a deployment: nodes are
// adjacent iff their distance is at most 1.
func UnitDiskGraph(pts []Point) *Graph {
	g, _ := geom.UnitUDG(pts)
	return g
}

// Solution is the result of a solve call.
type Solution struct {
	// InSet marks the chosen dominators.
	InSet []bool
	// Members lists the chosen dominators in ascending order.
	Members []NodeID
	// Rounds is the number of synchronous communication rounds the
	// distributed algorithm uses for this instance.
	Rounds int
	// FractionalObjective is Σx of Algorithm 1's fractional solution
	// (general graphs only, 0 otherwise).
	FractionalObjective float64
	// CertifiedLowerBound is a proven lower bound on the optimal
	// fractional solution, extracted from Algorithm 1's dual certificate
	// via weak duality. Only the unweighted general-graph pipeline
	// (SolveKMDS) builds a dual certificate; the weighted and UDG solvers
	// leave this 0.
	CertifiedLowerBound float64
	// Kappa is Algorithm 1's dual infeasibility factor t·(Δ+1)^{1/t}
	// (Lemma 4.4), the divisor already applied to CertifiedLowerBound.
	// Like the lower bound it is only set by SolveKMDS.
	Kappa float64
	// Algorithm names the algorithm that produced the solution.
	Algorithm string
}

// Size returns |S|.
func (s *Solution) Size() int { return verify.SetSize(s.InSet) }

// Scratch is a reusable solver arena for SolveKMDS: it preallocates every
// working array of Algorithms 1 and 2 and is refilled in place on each
// solve, so a caller that solves many instances in a loop (a benchmark
// harness, a service worker) allocates nothing in steady state. Create one
// with NewScratch and pass it via WithScratch.
//
// A Scratch is NOT safe for concurrent use — give each worker goroutine
// its own. A scratch-backed Solution's InSet aliases the arena and is
// overwritten by the next solve through the same Scratch; Members is
// always a fresh copy, so keep that (or copy InSet) if the mask must
// outlive the next call.
type Scratch struct {
	s *core.Scratch
}

// NewScratch returns an empty arena; it grows to fit the first instances
// it sees and is reused thereafter.
func NewScratch() *Scratch { return &Scratch{s: core.NewScratch()} }

// config collects options for both solvers.
type config struct {
	t          int
	seed       int64
	localDelta bool
	fanOut     int
	workers    int
	float32    bool
	bitset     core.BitsetMode
	ctx        context.Context
	scratch    *Scratch
	observer   *SolveObserver
}

// Option customizes a solve call.
type Option func(*config)

// WithT sets Algorithm 1's trade-off parameter t (default 3): time grows
// as O(t²) while the approximation factor shrinks as O(t·Δ^(2/t)·log Δ).
// Ignored by the UDG solver.
func WithT(t int) Option { return func(c *config) { c.t = t } }

// WithSeed fixes the randomness (default 1); equal seeds give equal
// results.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithLocalDelta makes Algorithm 1 use 2-hop-local maximum degrees instead
// of assuming the global maximum degree is known. Ignored by the UDG
// solver.
func WithLocalDelta() Option { return func(c *config) { c.localDelta = true } }

// WithFanOut caps the per-leader promotion fan-out of the UDG algorithm's
// Part II (default k). Ignored by the general-graph solver.
func WithFanOut(f int) Option { return func(c *config) { c.fanOut = f } }

// WithWorkers distributes the in-memory engines' per-round sweeps over w
// goroutines (default 1, sequential); runtime.GOMAXPROCS(0) is the natural
// choice on multicore machines. Results are bit-identical to the
// sequential execution for equal seeds, whatever the worker count.
// Ignored by the UDG solver.
func WithWorkers(w int) Option { return func(c *config) { c.workers = w } }

// WithFloat32 switches Algorithm 1's per-node numeric state (fractional
// values, coverage, dual shares) from float64 to float32, halving the
// memory bandwidth of the dense per-round sweeps — worthwhile on large
// instances where the solve is memory-bound. Precision contract: the
// reported FractionalObjective and CertifiedLowerBound agree with the
// float64 engine to ~1e-3 relative on the benchmark families, while the
// integral dominating set remains exactly feasible — the rounding and
// repair phases consume the widened values and verify coverage in exact
// integer arithmetic. Individual fractional values can differ by a full
// increment step where a discrete threshold decision flips (rare, ≤ 1%
// of nodes). The float32 path is itself fully deterministic: equal seeds
// give bit-identical results at every worker count. Honored by
// SolveKMDS; ignored by the weighted and UDG solvers.
func WithFloat32() Option { return func(c *config) { c.float32 = true } }

// BitsetMode selects whether the rounding phase's dense coverage sweeps
// run over packed []uint64 closed-neighborhood rows (AND + popcount)
// instead of the CSR adjacency scan. Results are identical either way —
// the bitset kernels visit candidates in the same ascending order the
// CSR scan does — only the constant factor changes, in the packed
// kernels' favor on dense graphs.
type BitsetMode = core.BitsetMode

// Bitset modes for WithBitset.
const (
	// BitsetAuto (the default) packs rows only when the instance is dense
	// enough for popcount scans to win: average closed neighborhood at
	// least a quarter of the packed row stride, and at most 128 MiB of
	// rows in total.
	BitsetAuto = core.BitsetAuto
	// BitsetOn forces the packed kernels (subject to the memory cap).
	BitsetOn = core.BitsetOn
	// BitsetOff forces the CSR scan.
	BitsetOff = core.BitsetOff
)

// WithBitset overrides the automatic bitset-kernel gating of the
// rounding phase; see BitsetMode. Honored by SolveKMDS and
// SolveWeightedKMDS; ignored by the UDG solver.
func WithBitset(m BitsetMode) Option { return func(c *config) { c.bitset = m } }

// WithScratch makes SolveKMDS draw its working arrays from the reusable
// arena s instead of allocating fresh ones; see Scratch for the aliasing
// and concurrency contract. The solution is bit-identical either way.
// Ignored by the weighted and UDG solvers.
func WithScratch(s *Scratch) Option { return func(c *config) { c.scratch = s } }

// WithContext makes the solve honor ctx: the engines check it between
// communication rounds and abandon the run with an error matching
// ErrCanceled once ctx is done. A live context never changes the result.
// Honored by SolveKMDS and SolveWeightedKMDS; the UDG solver runs in
// O(log log n) rounds and ignores it.
func WithContext(ctx context.Context) Option { return func(c *config) { c.ctx = ctx } }

// WithObserver installs o on the solve: its OnPhase callback fires at
// each phase boundary of the general-graph pipeline (fractional,
// rounding, verify — wall time, communication rounds, approximate
// allocations) and OnDone fires once with the solve summary (LP rounds,
// rounding passes, κ, certified lower bound, dual gap). Callbacks run
// synchronously on the solving goroutine and must not call back into the
// solver. WithObserver(nil) is exactly the un-instrumented solve: no
// clocks are read and nothing is allocated, so the scratch-backed steady
// state keeps its zero-allocation property. Honored by SolveKMDS;
// ignored by the weighted and UDG solvers.
func WithObserver(o *SolveObserver) Option { return func(c *config) { c.observer = o } }

// SolveKMDS computes a k-fold dominating set of g with the general-graph
// pipeline (Algorithms 1 and 2). The result satisfies the ClosedPP
// convention (which implies Standard) with per-node demands capped at
// closed-neighborhood sizes, so it exists for every graph and 1 ≤ k ≤ n.
// Invalid inputs return errors matching ErrEmptyGraph or ErrBadK.
func SolveKMDS(g *Graph, k int, opts ...Option) (*Solution, error) {
	if g == nil {
		return nil, ErrEmptyGraph
	}
	if err := validateInstance(g.NumNodes(), k); err != nil {
		return nil, err
	}
	c := config{t: 3, seed: 1}
	for _, o := range opts {
		o(&c)
	}
	coreOpts := core.Options{
		K:          float64(k),
		T:          c.t,
		Seed:       c.seed,
		LocalDelta: c.localDelta,
		Workers:    c.workers,
		Float32:    c.float32,
		Bitset:     c.bitset,
		Ctx:        c.ctx,
		Observer:   c.observer,
	}
	if c.scratch != nil {
		coreOpts.Scratch = c.scratch.s
	}
	res, err := core.Solve(g, coreOpts)
	if err != nil {
		return nil, err
	}
	return &Solution{
		//ftlint:allow scratchalias Solution.InSet documents the arena-backed aliasing contract; Members below is the durable copy
		InSet:               res.InSet,
		Members:             verify.SetFromMask(res.InSet),
		Rounds:              res.Fractional.LoopRounds + 4,
		FractionalObjective: res.Fractional.Objective(),
		CertifiedLowerBound: res.Fractional.DualObjective(res.K) / res.Fractional.Kappa,
		Kappa:               res.Fractional.Kappa,
		Algorithm:           "general-graph (Alg 1+2)",
	}, nil
}

// SolveUDGKMDS computes a k-fold dominating set of the unit disk graph
// induced by pts using Algorithm 3 (O(log log n) rounds, expected O(1)
// approximation). It returns the solution and the induced graph.
func SolveUDGKMDS(pts []Point, k int, opts ...Option) (*Solution, *Graph, error) {
	if err := validateInstance(len(pts), k); err != nil {
		return nil, nil, err
	}
	c := config{seed: 1}
	for _, o := range opts {
		o(&c)
	}
	g, idx := geom.UnitUDG(pts)
	res, err := udg.Solve(pts, g, idx, udg.Options{K: k, Seed: c.seed, FanOut: c.fanOut})
	if err != nil {
		return nil, nil, err
	}
	return &Solution{
		InSet:     res.Leader,
		Members:   verify.SetFromMask(res.Leader),
		Rounds:    2*res.PartIRounds + 3*res.PartIIIters + 1,
		Algorithm: "unit-disk-graph (Alg 3)",
	}, g, nil
}

// Verify checks that sol is a k-fold dominating set of g under the given
// convention; it returns nil on success and a descriptive error naming the
// first violated node otherwise. Per-node demands are capped at
// closed-neighborhood sizes with the same EffectiveDemands vector the
// solvers optimize against, so a solution a solver reports as feasible
// always verifies — even on graphs with nodes of degree < k, where the
// raw demand k is unsatisfiable.
func Verify(g *Graph, sol *Solution, k int, conv Convention) error {
	return verify.CheckKFoldVector(g, sol.InSet, core.EffectiveDemands(g, float64(k)), conv)
}

// SolveWeightedKMDS computes a k-fold dominating set minimizing total node
// cost (e.g. inverse battery level) with the weighted extension of
// Algorithm 1 the paper sketches in Section 4.1. costs[v] must be positive.
func SolveWeightedKMDS(g *Graph, k int, costs []float64, opts ...Option) (*Solution, error) {
	if g == nil {
		return nil, ErrEmptyGraph
	}
	if err := validateInstance(g.NumNodes(), k); err != nil {
		return nil, err
	}
	c := config{t: 3, seed: 1}
	for _, o := range opts {
		o(&c)
	}
	res, err := core.SolveWeighted(g, core.WeightedOptions{
		K: float64(k), T: c.t, Seed: c.seed, Costs: costs,
		Workers: c.workers, Bitset: c.bitset, Ctx: c.ctx,
	})
	if err != nil {
		return nil, err
	}
	return &Solution{
		//ftlint:allow scratchalias Solution.InSet documents the arena-backed aliasing contract; Members below is the durable copy
		InSet:   res.InSet,
		Members: verify.SetFromMask(res.InSet),
		// Engine-reported double-loop rounds plus the four fixed rounds of
		// the guarantee sweep and rounding, matching SolveKMDS's
		// accounting. CertifiedLowerBound stays 0: the weighted engine
		// builds no dual certificate (see core.SolveWeighted).
		Rounds:              res.LoopRounds + 4,
		FractionalObjective: res.FractionalCost,
		Algorithm:           "weighted general-graph (Alg 1W+2W)",
	}, nil
}

// ConnectBackbone augments a dominating-set solution with bridge nodes so
// the members form a connected routing backbone inside every connected
// component of g (the classical CDS post-processing of the clustering
// literature). It returns a new Solution; the input is not modified.
func ConnectBackbone(g *Graph, sol *Solution) (*Solution, error) {
	res, err := cds.Connect(g, sol.InSet)
	if err != nil {
		return nil, err
	}
	return &Solution{
		InSet:     res.InSet,
		Members:   verify.SetFromMask(res.InSet),
		Rounds:    sol.Rounds,
		Algorithm: sol.Algorithm + " + connect",
	}, nil
}

// IsConnectedBackbone reports whether the solution's members form one
// connected subgraph inside every connected component of g.
func IsConnectedBackbone(g *Graph, sol *Solution) bool {
	return cds.IsConnectedBackbone(g, sol.InSet)
}

// SurvivesFailures reports how coverage degrades when the dominators in
// dead fail: the number of surviving non-member nodes with zero live
// dominators, and the minimum surviving coverage.
func SurvivesFailures(g *Graph, sol *Solution, dead []NodeID) (uncovered, minCoverage int) {
	dm := make(map[NodeID]bool, len(dead))
	for _, v := range dead {
		dm[v] = true
	}
	rep := verify.AfterFailures(g, sol.InSet, dm)
	return rep.UncoveredNodes, rep.MinCoverage
}
