package ftclust

// One benchmark per experiment of EXPERIMENTS.md (E1–E11, A1–A3), each
// regenerating its table at a bench-friendly scale, plus performance
// micro-benchmarks of the two solvers and the LP substrate. Run with
//
//	go test -bench=. -benchmem
//
// cmd/ftbench regenerates the full-scale tables.

import (
	"runtime"
	"strconv"
	"testing"

	"ftclust/internal/core"
	"ftclust/internal/exp"
	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/lp"
	"ftclust/internal/udg"
)

func benchConfig() exp.Config { return exp.Config{Seed: 7, Trials: 2, Scale: 0.25} }

// runExperiment executes the driver once per iteration and reports the
// mean of the given numeric column as a custom metric.
func runExperiment(b *testing.B, id string, metricCol int, metricName string) {
	b.Helper()
	e, err := exp.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tb, err := e.Run(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && metricCol >= 0 {
			sum, n := 0.0, 0
			for r := 0; r < tb.NumRows(); r++ {
				if v, err := strconv.ParseFloat(tb.Row(r)[metricCol], 64); err == nil {
					sum += v
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(sum/float64(n), metricName)
			}
		}
	}
}

func BenchmarkE1FractionalTradeoff(b *testing.B) { runExperiment(b, "E1", 8, "ratio") }
func BenchmarkE2RoundingBlowup(b *testing.B)     { runExperiment(b, "E2", 6, "blowup") }
func BenchmarkE3EndToEnd(b *testing.B)           { runExperiment(b, "E3", 4, "kmds2-size") }
func BenchmarkE4DualCertificate(b *testing.B)    { runExperiment(b, "E4", 4, "viol/kappa") }
func BenchmarkE5PartICorrectness(b *testing.B)   { runExperiment(b, "E5", 3, "violations") }
func BenchmarkE6LeadersPerDisk(b *testing.B)     { runExperiment(b, "E6", 2, "leaders/disk") }
func BenchmarkE7UDGEndToEnd(b *testing.B)        { runExperiment(b, "E7", 6, "ratio-vs-greedy") }
func BenchmarkE8Figure1Geometry(b *testing.B)    { runExperiment(b, "E8", 2, "alpha") }
func BenchmarkE9MessageSize(b *testing.B)        { runExperiment(b, "E9", 3, "bits/logn") }
func BenchmarkE10FaultTolerance(b *testing.B)    { runExperiment(b, "E10", 3, "uncovered%") }
func BenchmarkE11LowerBoundGap(b *testing.B)     { runExperiment(b, "E11", 4, "ratio") }
func BenchmarkE12WeightedKMDS(b *testing.B)      { runExperiment(b, "E12", 4, "weighted-cost") }
func BenchmarkE13MobilityDecay(b *testing.B)     { runExperiment(b, "E13", 3, "under%") }
func BenchmarkE14CDSOverhead(b *testing.B)       { runExperiment(b, "E14", 5, "cds/s") }
func BenchmarkE15SynchronizerOverhead(b *testing.B) {
	runExperiment(b, "E15", 4, "msg-overhead")
}
func BenchmarkE16RoutingStretch(b *testing.B) { runExperiment(b, "E16", 3, "stretch") }
func BenchmarkE17NeighborDiscovery(b *testing.B) {
	runExperiment(b, "E17", 3, "slots")
}
func BenchmarkE18CrashRobustness(b *testing.B)  { runExperiment(b, "E18", 4, "repairs") }
func BenchmarkAblRoundingNoRepair(b *testing.B) { runExperiment(b, "A1", 3, "infeasible") }
func BenchmarkAblPartTwoFanout(b *testing.B)    { runExperiment(b, "A2", 3, "size") }
func BenchmarkAblLocalDelta(b *testing.B)       { runExperiment(b, "A3", 4, "local-objective") }

// --- Performance micro-benchmarks ---

func BenchmarkAlgorithm1(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		g := graph.GnpAvgDegree(n, 12, 3)
		k := core.EffectiveDemands(g, 2)
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveFractional(g, k, core.FractionalOptions{T: 3}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAlgorithm2(b *testing.B) {
	g := graph.GnpAvgDegree(2048, 12, 3)
	k := core.EffectiveDemands(g, 2)
	frac, err := core.SolveFractional(g, k, core.FractionalOptions{T: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RoundSolution(g, k, frac.X, frac.Delta,
			core.RoundingOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgorithm3(b *testing.B) {
	for _, n := range []int{1024, 8192} {
		pts := geom.UniformPoints(n, float64(n)/256, 5)
		g, idx := geom.UnitUDG(pts)
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := udg.Solve(pts, g, idx, udg.Options{K: 3, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimplexLP(b *testing.B) {
	g := graph.GnpAvgDegree(150, 10, 2)
	c := lp.FromGraph(g, lp.UniformK(150, 2))
	for i := 0; i < b.N; i++ {
		if _, _, err := c.SolveFractional(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPublicAPISolve(b *testing.B) {
	g, err := GenerateGraph("gnp", 512, 10, 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sol, err := SolveKMDS(g, 3, WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if sol.Size() == 0 {
			b.Fatal("empty solution")
		}
	}
}

// BenchmarkPipeline covers the request→solution pipeline the service runs
// per cold query through the public API: generate the instance, hash it
// for the cache key, solve. The scratch variant reuses one arena across
// iterations — the allocs/op gap against fresh is the pooled-scratch
// payoff. CI smokes these with -bench=Pipeline -benchtime=1x.
func BenchmarkPipeline(b *testing.B) {
	const n, d, k = 2000, 8, 2
	run := func(b *testing.B, opts ...Option) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := GenerateGraph("gnp", n, d, 3)
			if err != nil {
				b.Fatal(err)
			}
			g.CanonicalHash()
			sol, err := SolveKMDS(g, k, append([]Option{WithSeed(1)}, opts...)...)
			if err != nil {
				b.Fatal(err)
			}
			if sol.Size() == 0 {
				b.Fatal("empty solution")
			}
		}
	}
	b.Run("fresh", func(b *testing.B) { run(b) })
	b.Run("scratch", func(b *testing.B) {
		sc := NewScratch()
		run(b, WithScratch(sc))
	})
}

func BenchmarkPublicAPISolveParallel(b *testing.B) {
	g, err := GenerateGraph("gnp", 4096, 14, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sol, err := SolveKMDS(g, 3, WithSeed(int64(i)), WithWorkers(w))
				if err != nil {
					b.Fatal(err)
				}
				if sol.Size() == 0 {
					b.Fatal("empty solution")
				}
			}
		})
	}
}
