module ftclust

go 1.22
