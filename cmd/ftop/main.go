// Command ftop is a live terminal dashboard for an ftserved fleet. It
// polls one node's fleet endpoint (GET /cluster/v1/fleet) — which
// itself scrapes and merges every alive peer's /metrics — plus the
// cluster event log (GET /debug/events), and renders cluster-wide QPS,
// solve latency quantiles, cache/coalesce/shed ratios, a per-peer
// membership table and the newest events as plain ANSI text.
//
// Usage:
//
//	ftop [-target 127.0.0.1:8080] [-interval 2s] [-events 8]
//	     [-timeout 3s] [-once]
//
// In the default loop mode the screen redraws every -interval and QPS
// is the rolling rate of the cluster's merged request counter between
// polls. -once prints a single frame and exits (QPS falls back to the
// lifetime average requests/uptime) — the mode CI smokes use; any fetch
// failure in -once mode exits 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"ftclust/internal/obs"
	"ftclust/internal/service"
)

// maxFetchBody caps how much of a fleet/events response the dashboard
// buffers per poll; a misbehaving peer cannot balloon the client.
const maxFetchBody = 4 << 20

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftop:", err)
		os.Exit(1)
	}
}

// eventsBody is the GET /debug/events response shape.
type eventsBody struct {
	Events []obs.Event `json:"events"`
}

// fetchJSON GETs url and decodes the body into out.
func fetchJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxFetchBody)).Decode(out)
}

// frame is one poll's worth of dashboard state.
type frame struct {
	at     time.Time
	fleet  service.FleetSummary
	events []obs.Event
}

func fetchFrame(client *http.Client, target string, eventCount int) (frame, error) {
	f := frame{at: time.Now()}
	if err := fetchJSON(client, "http://"+target+service.FleetPath, &f.fleet); err != nil {
		return f, err
	}
	var ev eventsBody
	url := fmt.Sprintf("http://%s/debug/events?n=%d", target, eventCount)
	if err := fetchJSON(client, url, &ev); err != nil {
		return f, err
	}
	f.events = ev.Events
	return f, nil
}

// ratio renders part/whole as a percentage, "-" when whole is zero.
func ratio(part, whole float64) string {
	if whole <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*part/whole)
}

// attrString renders an event's attrs in sorted-key order.
func attrString(attrs map[string]string) string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+attrs[k])
	}
	return strings.Join(parts, " ")
}

// render writes one dashboard frame. qps < 0 means "unknown yet" (first
// loop frame before two samples exist).
func render(w io.Writer, target string, f frame, qps float64) {
	agg := f.fleet.Aggregate

	fmt.Fprintf(w, "ftop — fleet via %s — %s\n", target, f.at.Format("15:04:05"))
	fmt.Fprintf(w, "members %d   scrape errors %d   uptime %s\n",
		f.fleet.Members, f.fleet.ScrapeErrors,
		(time.Duration(agg.UptimeSecondsMax) * time.Second).String())

	qpsStr := "-"
	if qps >= 0 {
		qpsStr = fmt.Sprintf("%.1f", qps)
	}
	fmt.Fprintf(w, "\ncluster  qps %-8s solves %-8.0f p50 %-8s p99 %s\n",
		qpsStr, agg.Solves,
		fmt.Sprintf("%.2fms", agg.SolveP50Ms), fmt.Sprintf("%.2fms", agg.SolveP99Ms))
	fmt.Fprintf(w, "         cache-hit %-6s coalesced %-6s shed queue/rate %s/%s   forwards %.0f\n",
		ratio(agg.CacheHits, agg.CacheHits+agg.CacheMisses),
		ratio(agg.Coalesced, agg.Solves+agg.Coalesced),
		ratio(agg.ShedQueue, agg.HTTPRequests), ratio(agg.ShedRatelimit, agg.HTTPRequests),
		agg.Forwards)

	fmt.Fprintf(w, "\n%-22s %-8s %-10s %-8s %-10s %-10s %s\n",
		"PEER", "STATE", "HB-AGE", "SCRAPE", "SOLVES", "REQS", "UPTIME")
	for _, p := range f.fleet.Peers {
		scrape := fmt.Sprintf("%.0fms", p.ScrapeMs)
		if !p.ScrapeOK {
			scrape = "FAIL"
		}
		hbAge := "-"
		if !p.Self {
			hbAge = fmt.Sprintf("%.0fms", p.HeartbeatAgeMs)
		}
		fmt.Fprintf(w, "%-22s %-8s %-10s %-8s %-10.0f %-10.0f %s\n",
			p.Addr, p.State, hbAge, scrape, p.Solves, p.HTTPRequests,
			(time.Duration(p.UptimeSeconds) * time.Second).String())
		if p.Error != "" {
			fmt.Fprintf(w, "    error: %s\n", p.Error)
		}
	}

	fmt.Fprintf(w, "\nEVENTS (newest first)\n")
	if len(f.events) == 0 {
		fmt.Fprintln(w, "  (none)")
	}
	for _, e := range f.events {
		fmt.Fprintf(w, "  %s  %-14s %s\n", e.Time.Format("15:04:05.000"), e.Type, attrString(e.Attrs))
	}
}

func run() error {
	var (
		target     = flag.String("target", "127.0.0.1:8080", "any fleet member's host:port")
		interval   = flag.Duration("interval", 2*time.Second, "poll period in loop mode")
		eventCount = flag.Int("events", 8, "event-log tail length")
		timeout    = flag.Duration("timeout", 3*time.Second, "per-poll HTTP timeout")
		once       = flag.Bool("once", false, "print one frame and exit (CI mode)")
	)
	flag.Parse()

	client := &http.Client{Timeout: *timeout}

	if *once {
		f, err := fetchFrame(client, *target, *eventCount)
		if err != nil {
			return err
		}
		// No second sample to rate against: report the lifetime average.
		qps := -1.0
		if agg := f.fleet.Aggregate; agg.UptimeSecondsMax > 0 {
			qps = agg.HTTPRequests / agg.UptimeSecondsMax
		}
		render(os.Stdout, *target, f, qps)
		return nil
	}

	// Loop mode: rolling QPS across the last few polls; a fetch error
	// renders as a banner and the loop keeps trying (the fleet endpoint
	// itself degrades rather than erroring, so failures here mean the
	// polled node is unreachable).
	window := obs.NewRateWindow(8)
	for {
		f, err := fetchFrame(client, *target, *eventCount)
		fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		if err != nil {
			fmt.Printf("ftop — fleet via %s — %s\n\nfetch error: %v\n",
				*target, time.Now().Format("15:04:05"), err)
		} else {
			window.Observe(f.at, f.fleet.Aggregate.HTTPRequests)
			qps := -1.0
			if r := window.Rate(); r > 0 {
				qps = r
			}
			render(os.Stdout, *target, f, qps)
		}
		time.Sleep(*interval)
	}
}
