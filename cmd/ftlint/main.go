// Command ftlint is this repository's multichecker: it runs the custom
// go/analysis-style analyzers from internal/analysis — the machine
// enforcement of the determinism, aliasing, and concurrency contracts —
// over the module, and can additionally drive the standard `go vet`
// suite so CI needs a single lint entry point.
//
// Usage:
//
//	go run ./cmd/ftlint [-checks detrand,maporder,…] [-vet] [-json] [packages]
//
// With no packages, ./... is linted. Findings print as
// file:line:col: message [check] and make the exit status 1; -json
// instead emits the findings as a JSON array of
// {file,line,col,check,message} objects on stdout (an empty array when
// the tree is clean), for editor and CI integration. A finding
// can be waived in source with
//
//	//ftlint:allow <check> <reason…>
//
// on the flagged line or the line above; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"strings"

	"ftclust/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	checks := flag.String("checks", "", "comma-separated analyzer subset (default: all)")
	vet := flag.Bool("vet", false, "also run the standard `go vet` suite over the same packages")
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout instead of text")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			scope := "all packages"
			if len(a.Packages) > 0 {
				scope = strings.Join(a.Packages, ", ")
			}
			fmt.Printf("%-14s %s\n%14s   scope: %s\n", a.Name, a.Doc, "", scope)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}
	pkgs, err := analysis.NewLoader().Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftlint:", err)
		return 2
	}

	status := 0
	fset := pkgs[0].Fset
	if *asJSON {
		if err := writeJSON(os.Stdout, fset, diags); err != nil {
			fmt.Fprintln(os.Stderr, "ftlint:", err)
			return 2
		}
	}
	if len(diags) > 0 {
		status = 1
		if !*asJSON {
			for _, d := range diags {
				pos := fset.Position(d.Pos)
				fmt.Printf("%s: %s [%s]\n", pos, d.Message, d.Check)
			}
		}
		fmt.Fprintf(os.Stderr, "ftlint: %d finding(s)\n", len(diags))
	}

	if *vet {
		if code := runGoVet(patterns); code != 0 && status == 0 {
			status = code
		}
	}
	return status
}

// jsonDiag is one finding in -json output.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// writeJSON emits diags as a JSON array — always an array, [] when the
// tree is clean, so consumers never special-case an empty run.
func writeJSON(w io.Writer, fset *token.FileSet, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		out = append(out, jsonDiag{
			File:    pos.Filename,
			Line:    pos.Line,
			Col:     pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// selectAnalyzers resolves the -checks flag.
func selectAnalyzers(csv string) ([]*analysis.Analyzer, error) {
	if csv == "" {
		return analysis.All(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := analysis.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown check %q (run -list for the catalog)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// runGoVet shells out to the standard vet suite so CI has one lint
// entry point; ftlint's own analyzers stay in-process.
func runGoVet(patterns []string) int {
	args := append([]string{"vet"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "ftlint: go vet:", err)
		return 2
	}
	return 0
}
