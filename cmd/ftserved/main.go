// Command ftserved runs the fault-tolerant clustering service: an HTTP
// JSON API over the k-MDS solver with a bounded solver pool, an LRU
// solution cache, stateful cluster sessions with local failure repair,
// Prometheus-style /metrics, per-request traces at /debug/trace, and
// structured JSON logs.
//
// Usage:
//
//	ftserved [-addr :8080] [-workers N] [-queue 64] [-cache 128]
//	         [-timeout 60s] [-max-body 16777216] [-max-nodes 1048576]
//	         [-solve-threads 1] [-drain 30s] [-log-level info]
//	         [-slow-ms 0] [-trace-ring 256] [-event-ring 256] [-pprof]
//	         [-join host:port,...] [-advertise host:port]
//	         [-gossip-interval 1s] [-suspect-after 5s] [-evict-after 15s]
//	         [-cluster-seed 1] [-rate 0] [-burst 0]
//
// Cluster mode: -join (or a non-empty -advertise) starts the gossip
// membership layer; peers converge on the member list and route each
// solve key to its rendezvous owner. -rate enables per-client
// token-bucket admission control independently of clustering.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops
// accepting, in-flight requests and queued solves drain (bounded by
// -drain), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ftclust/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftserved:", err)
		os.Exit(1)
	}
}

// parseLogLevel maps the -log-level flag onto a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// advertiseAddr resolves the address peers should dial: the -advertise
// flag verbatim when set, else the listen address with an unspecified
// host replaced by the loopback (good enough for single-host clusters;
// multi-host deployments must pass -advertise explicitly).
func advertiseAddr(listen, advertise string) (string, error) {
	if advertise != "" {
		if _, _, err := net.SplitHostPort(advertise); err != nil {
			return "", fmt.Errorf("-advertise %q: %w", advertise, err)
		}
		return advertise, nil
	}
	host, port, err := net.SplitHostPort(listen)
	if err != nil {
		return "", fmt.Errorf("cannot derive advertise address from -addr %q: %w", listen, err)
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port), nil
}

// splitSeeds parses the -join list, dropping empty segments.
func splitSeeds(join string) []string {
	var seeds []string
	for _, s := range strings.Split(join, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seeds = append(seeds, s)
		}
	}
	return seeds
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "max queued solves before shedding with 429")
		cacheSize    = flag.Int("cache", 128, "LRU solution-cache entries (-1 disables)")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-request solve deadline")
		maxBody      = flag.Int64("max-body", 16<<20, "max request body bytes")
		maxNodes     = flag.Int("max-nodes", 1<<20, "max nodes per instance")
		solveThreads = flag.Int("solve-threads", 1, "parallel sweep workers per solve")
		sessionTTL   = flag.Duration("session-ttl", 30*time.Minute, "idle-session lifetime before the janitor sweeps it (negative disables)")
		drain        = flag.Duration("drain", 30*time.Second, "shutdown drain deadline")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
		slowMs       = flag.Int("slow-ms", 0, "warn-log requests slower than this many ms (0 disables)")
		traceRing    = flag.Int("trace-ring", 256, "recent request traces kept for /debug/trace")
		eventRing    = flag.Int("event-ring", 256, "recent structured events kept for /debug/events")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")

		join           = flag.String("join", "", "comma-separated seed peers (host:port,...) — enables cluster mode")
		advertise      = flag.String("advertise", "", "address peers should dial for this node (default: derived from -addr)")
		gossipInterval = flag.Duration("gossip-interval", time.Second, "base period between gossip shuffle rounds")
		suspectAfter   = flag.Duration("suspect-after", 0, "missed-heartbeat window before a peer turns suspect (0 = 5× gossip interval)")
		evictAfter     = flag.Duration("evict-after", 0, "missed-heartbeat window before a peer is evicted (0 = 3× suspect-after)")
		clusterSeed    = flag.Int64("cluster-seed", 1, "seed for the gossip jitter/selection RNG")
		rate           = flag.Float64("rate", 0, "per-client admitted requests/second (0 disables the token bucket)")
		burst          = flag.Int("burst", 0, "per-client token-bucket burst (0 = 2× rate, min 1)")
	)
	flag.Parse()

	level, err := parseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var clusterCfg *service.ClusterConfig
	if *join != "" || *advertise != "" {
		self, err := advertiseAddr(*addr, *advertise)
		if err != nil {
			return err
		}
		clusterCfg = &service.ClusterConfig{
			Self:           self,
			Seeds:          splitSeeds(*join),
			GossipInterval: *gossipInterval,
			SuspectAfter:   *suspectAfter,
			EvictAfter:     *evictAfter,
			Seed:           *clusterSeed,
		}
	}

	srv := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		CacheSize:    *cacheSize,
		SolveTimeout: *timeout,
		MaxBodyBytes: *maxBody,
		MaxNodes:     *maxNodes,
		SolveThreads: *solveThreads,
		SessionTTL:   *sessionTTL,
		Logger:       logger,
		SlowRequest:  time.Duration(*slowMs) * time.Millisecond,
		TraceRing:    *traceRing,
		EventRing:    *eventRing,
		Cluster:      clusterCfg,
		RatePerSec:   *rate,
		RateBurst:    *burst,
	})

	handler := srv.Handler()
	if *pprofOn {
		// pprof mounts beside the service routes; the service mux has no
		// /debug/pprof patterns, so an outer mux keeps the profiles out of
		// the instrumented path (no histogram churn from profile scrapes).
		outer := http.NewServeMux()
		outer.HandleFunc("GET /debug/pprof/", pprof.Index)
		outer.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr,
			"workers", *workers, "queue", *queueDepth, "cache", *cacheSize,
			"pprof", *pprofOn, "slow_ms", *slowMs, "log_level", *logLevel,
			"cluster", clusterCfg != nil, "rate", *rate)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err // bind failure etc.; ErrServerClosed only follows Shutdown
	case <-ctx.Done():
	}

	logger.Info("signal received, draining", "deadline", drain.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Listener first (stops new connections, waits for in-flight
	// handlers), then the solver pool (drains queued jobs). The pool
	// drain emits the final "shutdown complete" log with totals.
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("pool drain: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("exited")
	return nil
}
