// Command ftserved runs the fault-tolerant clustering service: an HTTP
// JSON API over the k-MDS solver with a bounded solver pool, an LRU
// solution cache, stateful cluster sessions with local failure repair,
// and a metrics endpoint.
//
// Usage:
//
//	ftserved [-addr :8080] [-workers N] [-queue 64] [-cache 128]
//	         [-timeout 60s] [-max-body 16777216] [-max-nodes 1048576]
//	         [-solve-threads 1] [-drain 30s]
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops
// accepting, in-flight requests and queued solves drain (bounded by
// -drain), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ftclust/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftserved:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "max queued solves before 503")
		cacheSize    = flag.Int("cache", 128, "LRU solution-cache entries (-1 disables)")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-request solve deadline")
		maxBody      = flag.Int64("max-body", 16<<20, "max request body bytes")
		maxNodes     = flag.Int("max-nodes", 1<<20, "max nodes per instance")
		solveThreads = flag.Int("solve-threads", 1, "parallel sweep workers per solve")
		drain        = flag.Duration("drain", 30*time.Second, "shutdown drain deadline")
	)
	flag.Parse()

	srv := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		CacheSize:    *cacheSize,
		SolveTimeout: *timeout,
		MaxBodyBytes: *maxBody,
		MaxNodes:     *maxNodes,
		SolveThreads: *solveThreads,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("ftserved: listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err // bind failure etc.; ErrServerClosed only follows Shutdown
	case <-ctx.Done():
	}

	log.Printf("ftserved: signal received, draining (deadline %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Listener first (stops new connections, waits for in-flight
	// handlers), then the solver pool (drains queued jobs).
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("pool drain: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("ftserved: drained, bye")
	return nil
}
