// Command ftsim runs a distributed algorithm on the message-passing
// simulator and prints its per-round communication profile — rounds,
// messages, bits — the view a protocol engineer wants before deploying.
//
// Usage:
//
//	ftsim -n 500 -algo kmds -k 3 -t 3           # Algorithms 1+2 on G(n,p)
//	ftsim -n 500 -algo udg  -k 3 -density 20    # Algorithm 3 on a UDG
//	ftsim -n 500 -algo kmds -engine async       # α-synchronizer execution
package main

import (
	"flag"
	"fmt"
	"os"

	"ftclust/internal/core"
	"ftclust/internal/exp"
	"ftclust/internal/graph"
	"ftclust/internal/sim"
	"ftclust/internal/trace"
	"ftclust/internal/udg"
	"ftclust/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 300, "number of nodes")
		algo    = flag.String("algo", "kmds", "algorithm: kmds|udg")
		k       = flag.Int("k", 2, "fault-tolerance parameter")
		t       = flag.Int("t", 2, "Algorithm 1 trade-off parameter")
		d       = flag.Float64("d", 10, "average degree (kmds) ")
		density = flag.Float64("density", 20, "deployment density (udg)")
		seed    = flag.Int64("seed", 1, "seed")
		engine  = flag.String("engine", "sync", "engine: sync|parallel|async")
	)
	flag.Parse()

	var (
		g    *graph.Graph
		opts []sim.Option
		mk   func(v graph.NodeID) sim.Program
	)
	opts = append(opts, sim.WithSeed(*seed))
	switch *algo {
	case "kmds":
		g = graph.GnpAvgDegree(*n, *d, *seed)
		cfg := core.ProgramConfig{K: float64(*k), T: *t, Delta: g.MaxDegree(), Round: true}
		mk = func(v graph.NodeID) sim.Program { return core.NewProgram(v, cfg) }
	case "udg":
		pts, ug, _ := exp.UDGInstance(*n, *density, *seed)
		g = ug
		simPts := make([]sim.Point, len(pts))
		for i, p := range pts {
			simPts[i] = sim.Point{X: p.X, Y: p.Y}
		}
		opts = append(opts, sim.WithDistances(simPts))
		cfg := udg.ProgramConfig{K: *k, PartIIIters: *k + 4}
		mk = func(v graph.NodeID) sim.Program { return udg.NewProgram(v, cfg) }
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	nw := sim.New(g, opts...)
	var (
		res sim.Result
		err error
	)
	switch *engine {
	case "sync":
		res, err = nw.Run(mk, 10000)
	case "parallel":
		res, err = nw.RunParallel(mk, 10000)
	case "async":
		res, err = nw.RunAsync(mk, 10000)
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}
	if err != nil {
		return err
	}

	m := res.Metrics
	fmt.Printf("graph      : n=%d m=%d Δ=%d\n", g.NumNodes(), g.NumEdges(), g.MaxDegree())
	fmt.Printf("engine     : %s\n", *engine)
	fmt.Printf("rounds     : %d\n", m.Rounds)
	fmt.Printf("messages   : %d\n", m.Messages)
	fmt.Printf("total bits : %d (%.2f Mbit)\n", m.TotalBits, float64(m.TotalBits)/1e6)
	fmt.Printf("max msg    : %d bits = %.2f × ⌈log₂ n⌉\n", m.MaxMessageBits, m.MaxBitsPerLogN(g.NumNodes()))

	// Extract and verify the solution.
	inSet := make([]bool, g.NumNodes())
	switch *algo {
	case "kmds":
		out := core.Collect(res.Programs)
		inSet = out.InSet
	case "udg":
		for v, sp := range res.Programs {
			inSet[v] = sp.(*udg.Program).Leader()
		}
	}
	fmt.Printf("|S|        : %d\n", verify.SetSize(inSet))
	if err := verify.CheckKFold(g, inSet, float64(*k), verify.ClosedPP); err != nil {
		fmt.Printf("verified   : FAILED (%v)\n", err)
	} else {
		fmt.Printf("verified   : ok\n")
	}

	if len(m.MessagesPerRound) > 0 {
		tb := trace.New("per-round message profile", "round", "messages")
		for r, c := range m.MessagesPerRound {
			tb.AddRow(r, c)
		}
		fmt.Println()
		return tb.WriteText(os.Stdout)
	}
	return nil
}
