// Command kmds computes a k-fold dominating set of an instance file with
// any of the implemented algorithms and verifies the result.
//
// Usage:
//
//	kmds -in instance.graph -k 3 -algo kmds -t 3 -seed 1 [-sol out.sol]
//	kmds -points field.points -k 3 -algo udg [-sol out.sol]
//
// Algorithms: kmds (Algorithms 1+2), greedy, jrs, random, mis (layered
// Luby MIS), udg (Algorithm 3, requires -points), cellgrid (requires
// -points).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ftclust/internal/baseline"
	"ftclust/internal/core"
	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/render"
	"ftclust/internal/udg"
	"ftclust/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kmds:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in     = flag.String("in", "", "graph instance file")
		points = flag.String("points", "", "deployment (points) file; builds the unit disk graph")
		k      = flag.Int("k", 1, "fault-tolerance parameter k")
		algo   = flag.String("algo", "kmds", "algorithm: kmds|greedy|jrs|random|mis|udg|cellgrid")
		t      = flag.Int("t", 3, "Algorithm 1 trade-off parameter")
		seed   = flag.Int64("seed", 1, "random seed")
		solOut = flag.String("sol", "", "write the solution (one node ID per line)")
		svgOut = flag.String("svg", "", "render deployment + solution as SVG (needs -points)")
	)
	flag.Parse()
	if *k < 1 {
		return fmt.Errorf("k must be ≥ 1")
	}

	var (
		g   *graph.Graph
		pts []geom.Point
	)
	switch {
	case *points != "":
		f, err := os.Open(*points)
		if err != nil {
			return err
		}
		defer f.Close()
		pts, err = geom.ReadPoints(f)
		if err != nil {
			return err
		}
		g, _ = geom.UnitUDG(pts)
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = graph.Read(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -in or -points")
	}

	mask, rounds, err := solve(g, pts, *algo, *k, *t, *seed)
	if err != nil {
		return err
	}

	size := verify.SetSize(mask)
	fmt.Printf("algorithm : %s\n", *algo)
	fmt.Printf("nodes     : %d  edges: %d  Δ: %d\n", g.NumNodes(), g.NumEdges(), g.MaxDegree())
	fmt.Printf("k         : %d\n", *k)
	fmt.Printf("|S|       : %d (%.1f%% of nodes)\n", size, 100*float64(size)/float64(max(1, g.NumNodes())))
	if rounds > 0 {
		fmt.Printf("rounds    : %d\n", rounds)
	}
	conv := verify.ClosedPP
	if *algo == "cellgrid" || *algo == "mis" {
		conv = verify.Standard
	}
	if err := verify.CheckKFold(g, mask, float64(*k), conv); err != nil {
		fmt.Printf("verified  : FAILED (%v)\n", err)
	} else {
		fmt.Printf("verified  : ok (%s convention)\n", conv)
	}

	if *solOut != "" {
		f, err := os.Create(*solOut)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		for _, v := range verify.SetFromMask(mask) {
			fmt.Fprintln(bw, v)
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	if *svgOut != "" {
		if pts == nil {
			return fmt.Errorf("-svg needs -points")
		}
		f, err := os.Create(*svgOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := render.SVG(f, pts, g, mask, nil, render.Style{}); err != nil {
			return err
		}
	}
	return nil
}

func solve(g *graph.Graph, pts []geom.Point, algo string, k, t int, seed int64) ([]bool, int, error) {
	switch algo {
	case "kmds":
		res, err := core.Solve(g, core.Options{K: float64(k), T: t, Seed: seed})
		if err != nil {
			return nil, 0, err
		}
		return res.InSet, res.Fractional.LoopRounds + 4, nil
	case "greedy":
		return baseline.GreedyKMDS(g, float64(k)), 0, nil
	case "jrs":
		res := baseline.JRS(g, float64(k), seed)
		return res.InSet, res.Phases * 4, nil
	case "random":
		return baseline.RandomRepair(g, float64(k), 0.15, seed), 3, nil
	case "mis":
		res := baseline.LayeredMIS(g, k, seed)
		return res.InSet, res.Rounds * 2, nil
	case "udg":
		if pts == nil {
			return nil, 0, fmt.Errorf("udg algorithm needs -points")
		}
		_, idx := geom.UnitUDG(pts)
		res, err := udg.Solve(pts, g, idx, udg.Options{K: k, Seed: seed})
		if err != nil {
			return nil, 0, err
		}
		return res.Leader, 2*res.PartIRounds + 3*res.PartIIIters + 1, nil
	case "cellgrid":
		if pts == nil {
			return nil, 0, fmt.Errorf("cellgrid needs -points")
		}
		mask, err := baseline.CellGrid(pts, k)
		return mask, 1, err
	default:
		return nil, 0, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
