// Command kmds computes a k-fold dominating set of an instance file with
// any of the implemented algorithms and verifies the result.
//
// Usage:
//
//	kmds -in instance.graph -k 3 -algo kmds -t 3 -seed 1 [-sol out.sol]
//	kmds -points field.points -k 3 -algo udg [-sol out.sol]
//	kmds -in instance.graph -k 3 -json        # one JSON object on stdout
//	kmds -in instance.graph -k 3 -trace       # per-phase breakdown on stderr
//
// Algorithms: kmds (Algorithms 1+2), greedy, jrs, random, mis (layered
// Luby MIS), udg (Algorithm 3, requires -points), cellgrid (requires
// -points).
//
// -json emits the solution in the same wire format the ftserved service
// returns from /v1/solve (service.SolutionJSON), so scripts and the
// service smoke test share one schema.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ftclust/internal/baseline"
	"ftclust/internal/core"
	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/obs"
	"ftclust/internal/render"
	"ftclust/internal/service"
	"ftclust/internal/trace"
	"ftclust/internal/udg"
	"ftclust/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kmds:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in      = flag.String("in", "", "graph instance file")
		points  = flag.String("points", "", "deployment (points) file; builds the unit disk graph")
		k       = flag.Int("k", 1, "fault-tolerance parameter k")
		algo    = flag.String("algo", "kmds", "algorithm: kmds|greedy|jrs|random|mis|udg|cellgrid")
		t       = flag.Int("t", 3, "Algorithm 1 trade-off parameter")
		seed    = flag.Int64("seed", 1, "random seed")
		solOut  = flag.String("sol", "", "write the solution (one node ID per line)")
		svgOut  = flag.String("svg", "", "render deployment + solution as SVG (needs -points)")
		asJSON  = flag.Bool("json", false, "emit the result as one JSON object (service schema) instead of text")
		doTrace = flag.Bool("trace", false, "print a per-phase span breakdown to stderr (kmds algorithm only)")
	)
	flag.Parse()
	if *k < 1 {
		return fmt.Errorf("k must be ≥ 1")
	}

	var (
		g   *graph.Graph
		pts []geom.Point
	)
	switch {
	case *points != "":
		f, err := os.Open(*points)
		if err != nil {
			return err
		}
		defer f.Close()
		pts, err = geom.ReadPoints(f)
		if err != nil {
			return err
		}
		g, _ = geom.UnitUDG(pts)
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = graph.Read(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -in or -points")
	}

	res, err := solve(g, pts, *algo, *k, *t, *seed, *doTrace)
	if err != nil {
		return err
	}
	mask := res.mask
	if *doTrace {
		if res.phases == nil {
			return fmt.Errorf("-trace is only instrumented for -algo kmds")
		}
		// Stderr keeps -json output on stdout machine-clean.
		if err := trace.PhaseTable(res.phases, res.stats).WriteText(os.Stderr); err != nil {
			return err
		}
	}

	size := verify.SetSize(mask)
	conv := verify.ClosedPP
	if *algo == "cellgrid" || *algo == "mis" {
		conv = verify.Standard
	}
	verifyErr := verify.CheckKFold(g, mask, float64(*k), conv)

	if *asJSON {
		members := make([]int, 0, size)
		for _, v := range verify.SetFromMask(mask) {
			members = append(members, int(v))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&service.SolutionJSON{
			Algorithm:           *algo,
			N:                   g.NumNodes(),
			Edges:               g.NumEdges(),
			K:                   *k,
			Size:                size,
			Members:             members,
			Rounds:              res.rounds,
			Kappa:               res.kappa,
			FractionalObjective: res.fracObj,
			CertifiedLowerBound: res.lowerBound,
			Verified:            verifyErr == nil,
		}); err != nil {
			return err
		}
	} else {
		fmt.Printf("algorithm : %s\n", *algo)
		fmt.Printf("nodes     : %d  edges: %d  Δ: %d\n", g.NumNodes(), g.NumEdges(), g.MaxDegree())
		fmt.Printf("k         : %d\n", *k)
		fmt.Printf("|S|       : %d (%.1f%% of nodes)\n", size, 100*float64(size)/float64(max(1, g.NumNodes())))
		if res.rounds > 0 {
			fmt.Printf("rounds    : %d\n", res.rounds)
		}
		if verifyErr != nil {
			fmt.Printf("verified  : FAILED (%v)\n", verifyErr)
		} else {
			fmt.Printf("verified  : ok (%s convention)\n", conv)
		}
	}

	if *solOut != "" {
		f, err := os.Create(*solOut)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		for _, v := range verify.SetFromMask(mask) {
			fmt.Fprintln(bw, v)
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	if *svgOut != "" {
		if pts == nil {
			return fmt.Errorf("-svg needs -points")
		}
		f, err := os.Create(*svgOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := render.SVG(f, pts, g, mask, nil, render.Style{}); err != nil {
			return err
		}
	}
	return nil
}

// solveOut carries the mask plus the certificate fields only some
// algorithms produce (kmds fills kappa and the dual lower bound; the
// baselines and udg leave them 0).
type solveOut struct {
	mask       []bool
	rounds     int
	kappa      float64
	fracObj    float64
	lowerBound float64
	phases     []obs.PhaseInfo // filled by kmds under -trace
	stats      obs.SolveStats
}

func solve(g *graph.Graph, pts []geom.Point, algo string, k, t int, seed int64, doTrace bool) (solveOut, error) {
	switch algo {
	case "kmds":
		var (
			phases []obs.PhaseInfo
			stats  obs.SolveStats
		)
		opts := core.Options{K: float64(k), T: t, Seed: seed}
		if doTrace {
			opts.Observer = &obs.SolveObserver{
				OnPhase: func(p obs.PhaseInfo) { phases = append(phases, p) },
				OnDone:  func(s obs.SolveStats) { stats = s },
			}
		}
		res, err := core.Solve(g, opts)
		if err != nil {
			return solveOut{}, err
		}
		return solveOut{
			//ftlint:allow scratchalias one solve per process and no scratch reuse; the mask is consumed before exit
			mask:       res.InSet,
			rounds:     res.Fractional.LoopRounds + 4,
			kappa:      res.Fractional.Kappa,
			fracObj:    res.Fractional.Objective(),
			lowerBound: res.Fractional.DualObjective(res.K) / res.Fractional.Kappa,
			phases:     phases,
			stats:      stats,
		}, nil
	case "greedy":
		return solveOut{mask: baseline.GreedyKMDS(g, float64(k))}, nil
	case "jrs":
		res := baseline.JRS(g, float64(k), seed)
		return solveOut{mask: res.InSet, rounds: res.Phases * 4}, nil
	case "random":
		return solveOut{mask: baseline.RandomRepair(g, float64(k), 0.15, seed), rounds: 3}, nil
	case "mis":
		res := baseline.LayeredMIS(g, k, seed)
		return solveOut{mask: res.InSet, rounds: res.Rounds * 2}, nil
	case "udg":
		if pts == nil {
			return solveOut{}, fmt.Errorf("udg algorithm needs -points")
		}
		_, idx := geom.UnitUDG(pts)
		res, err := udg.Solve(pts, g, idx, udg.Options{K: k, Seed: seed})
		if err != nil {
			return solveOut{}, err
		}
		return solveOut{mask: res.Leader, rounds: 2*res.PartIRounds + 3*res.PartIIIters + 1}, nil
	case "cellgrid":
		if pts == nil {
			return solveOut{}, fmt.Errorf("cellgrid needs -points")
		}
		mask, err := baseline.CellGrid(pts, k)
		return solveOut{mask: mask, rounds: 1}, err
	default:
		return solveOut{}, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
