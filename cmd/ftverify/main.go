// Command ftverify checks a solution file against an instance.
//
// Usage:
//
//	ftverify -in instance.graph -sol out.sol -k 3 [-conv standard]
//	ftverify -points field.points -sol out.sol -k 3
//
// The solution file lists one node ID per line (the format cmd/kmds
// writes). Exit status 0 means the solution is a valid k-fold dominating
// set; 1 means it is not (or an I/O error occurred).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftverify:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in     = flag.String("in", "", "graph instance file")
		points = flag.String("points", "", "deployment file (unit disk graph)")
		solIn  = flag.String("sol", "", "solution file (one node ID per line)")
		k      = flag.Int("k", 1, "fault-tolerance parameter")
		conv   = flag.String("conv", "closed-pp", "convention: standard|closed-pp")
	)
	flag.Parse()
	if *solIn == "" {
		return fmt.Errorf("need -sol")
	}

	var g *graph.Graph
	switch {
	case *points != "":
		f, err := os.Open(*points)
		if err != nil {
			return err
		}
		defer f.Close()
		pts, err := geom.ReadPoints(f)
		if err != nil {
			return err
		}
		g, _ = geom.UnitUDG(pts)
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = graph.Read(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -in or -points")
	}

	sf, err := os.Open(*solIn)
	if err != nil {
		return err
	}
	defer sf.Close()
	mask := make([]bool, g.NumNodes())
	sc := bufio.NewScanner(sf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil || v < 0 || v >= g.NumNodes() {
			return fmt.Errorf("bad node id %q", line)
		}
		mask[v] = true
	}
	if err := sc.Err(); err != nil {
		return err
	}

	c := verify.ClosedPP
	if *conv == "standard" {
		c = verify.Standard
	} else if *conv != "closed-pp" {
		return fmt.Errorf("unknown convention %q", *conv)
	}
	if err := verify.CheckKFold(g, mask, float64(*k), c); err != nil {
		return fmt.Errorf("INVALID: %w", err)
	}
	fmt.Printf("valid %d-fold dominating set (%s), |S| = %d of %d nodes\n",
		*k, c, verify.SetSize(mask), g.NumNodes())
	return nil
}
