// Command ftbench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	ftbench                 # run the whole suite at full scale
//	ftbench -exp E7         # one experiment
//	ftbench -scale 0.3      # quick pass
//	ftbench -csv -o out/    # additionally write CSV per experiment
//	ftbench -bench-json BENCH_core.json
//	                        # instead: benchmark the core engines
//	                        # (sequential vs worker pool) and write the
//	                        # machine-readable performance report
//	ftbench -pipeline-json BENCH_pipeline.json
//	                        # instead: benchmark the request→solution
//	                        # pipeline (generate, hash, solve with and
//	                        # without scratch, HTTP service QPS, observer
//	                        # overhead, sustained-load quantiles)
//	ftbench -load-json BENCH_pipeline.json -load-seconds 10
//	                        # instead: only the sustained-load window —
//	                        # hold concurrent solve traffic against an
//	                        # in-process service, scrape its /metrics
//	                        # histograms and merge p50/p99 into the
//	                        # pipeline report's "load" section
//	ftbench -trace          # instead: one instrumented solve, printed as
//	                        # a per-phase span breakdown
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"ftclust"
	"ftclust/internal/exp"
	"ftclust/internal/graph"
	"ftclust/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id           = flag.String("exp", "", "experiment id (E1…E11, A1…A3); empty = all")
		seed         = flag.Int64("seed", 1, "root seed")
		trials       = flag.Int("trials", 5, "trials per table row")
		scale        = flag.Float64("scale", 1.0, "instance-size scale in (0,1]")
		csv          = flag.Bool("csv", false, "also write CSV files")
		outDir       = flag.String("o", ".", "directory for CSV output")
		benchJSON    = flag.String("bench-json", "", "benchmark the core engines and write this JSON report instead of running experiments")
		pipelineJSON = flag.String("pipeline-json", "", "benchmark the request→solution pipeline and write this JSON report instead of running experiments")
		repairJSON   = flag.String("repair-json", "", "benchmark incremental repair vs full re-solve and write this JSON report instead of running experiments")
		loadJSON     = flag.String("load-json", "", "run only the sustained-load window and merge its record into this pipeline JSON report")
		loadSeconds  = flag.Float64("load-seconds", 5, "wall-clock duration of the sustained-load window")
		doTrace      = flag.Bool("trace", false, "run one instrumented solve and print its per-phase span breakdown instead of experiments")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the selected mode to this file (inspect with go tool pprof)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	loadDur := time.Duration(*loadSeconds * float64(time.Second))
	if *benchJSON != "" {
		return runBenchJSON(*benchJSON, *scale)
	}
	if *pipelineJSON != "" {
		return runPipelineJSON(*pipelineJSON, *scale, loadDur)
	}
	if *loadJSON != "" {
		return runLoadJSON(*loadJSON, *scale, loadDur)
	}
	if *repairJSON != "" {
		return runRepairJSON(*repairJSON, *scale, *seed)
	}
	if *doTrace {
		return runTrace(*seed, *scale)
	}

	cfg := exp.Config{Seed: *seed, Trials: *trials, Scale: *scale}
	var suite []exp.Experiment
	if *id == "" {
		suite = exp.All()
	} else {
		e, err := exp.Lookup(*id)
		if err != nil {
			return err
		}
		suite = []exp.Experiment{e}
	}

	return runSuite(suite, cfg, *csv, *outDir)
}

// runTrace solves one representative instance with the observer armed and
// prints the per-phase breakdown — the CLI view of the span tree the
// service stores at /debug/trace/{id}.
func runTrace(seed int64, scale float64) error {
	n := int(2000 * scale)
	if n < 10 {
		n = 10
	}
	const k, t, deg = 2, 3, 8
	g := graph.GnpAvgDegree(n, deg, seed)
	var (
		phases []ftclust.SolvePhaseInfo
		stats  ftclust.SolveStats
	)
	observer := &ftclust.SolveObserver{
		OnPhase: func(p ftclust.SolvePhaseInfo) { phases = append(phases, p) },
		OnDone:  func(s ftclust.SolveStats) { stats = s },
	}
	sol, err := ftclust.SolveKMDS(g, k, ftclust.WithT(t), ftclust.WithSeed(seed),
		ftclust.WithObserver(observer))
	if err != nil {
		return err
	}
	fmt.Printf("gnp n=%d m=%d k=%d t=%d seed=%d  |S|=%d\n\n",
		n, g.NumEdges(), k, t, seed, sol.Size())
	return trace.PhaseTable(phases, stats).WriteText(os.Stdout)
}

func runSuite(suite []exp.Experiment, cfg exp.Config, csv bool, outDir string) error {
	for _, e := range suite {
		start := time.Now()
		tb, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := tb.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if csv {
			path := filepath.Join(outDir, e.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := tb.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
