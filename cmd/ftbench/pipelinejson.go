package main

// -pipeline-json mode: measure the whole request→solution pipeline the
// service runs per query — generate (or parse) the instance, hash it for
// the cache key, solve — plus the service itself end to end over HTTP,
// and write a machine-readable report (BENCH_pipeline.json at the repo
// root). Where BENCH_core.json tracks the solver phases in isolation,
// this report tracks the throughput story of the serving path: the
// O(n+m) generator, the streaming canonical hash, the pooled solver
// scratch (fresh vs scratch allocations), and the solve QPS of the HTTP
// service with cache and coalescing active.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ftclust"
	"ftclust/internal/graph"
	"ftclust/internal/service"
)

// pipelineSchema names the current BENCH_pipeline.json schema. v2 added
// the sustained-load section ("load") with histogram-scraped quantiles.
const pipelineSchema = "ftclust-bench-pipeline/v2"

// pipelineReport is the top-level BENCH_pipeline.json document.
type pipelineReport struct {
	Schema      string `json:"schema"`
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	// GnpGenerator records the Gnp implementation in effect (see
	// benchReport.GnpGenerator).
	GnpGenerator string           `json:"gnp_generator"`
	Scale        float64          `json:"scale"`
	Stages       []pipelineRecord `json:"stages"`
	// ObserverOverheadPct is the warm-solve cost of full observer
	// instrumentation: (solve/scratch+observer − solve/scratch) divided by
	// solve/scratch, in percent. The acceptance bar is < 3%.
	ObserverOverheadPct float64       `json:"observer_overhead_pct"`
	Service             serviceRecord `json:"service"`
	// Load is the sustained-load section (see loadRecord): p50/p99 scraped
	// from the service's /metrics histograms after a fixed-duration window.
	// Written by -load-json (and refreshed by -pipeline-json, which runs a
	// short window as part of the full regeneration).
	Load *loadRecord `json:"load,omitempty"`
}

// pipelineRecord is one measured pipeline stage.
type pipelineRecord struct {
	Op       string `json:"op"`
	N        int    `json:"n"`
	M        int    `json:"m,omitempty"`
	K        int    `json:"k,omitempty"`
	T        int    `json:"t,omitempty"`
	NsPerOp  int64  `json:"ns_op"`
	AllocsOp int64  `json:"allocs_op"`
	BytesOp  int64  `json:"bytes_op"`
}

// serviceRecord summarizes the HTTP end-to-end measurement: a fixed
// request mix fired at an httptest server, so QPS includes JSON codec,
// cache, coalescing and queue — everything a client sees.
type serviceRecord struct {
	Op              string  `json:"op"`
	Requests        int     `json:"requests"`
	UniqueInstances int     `json:"unique_instances"`
	Concurrency     int     `json:"concurrency"`
	QPS             float64 `json:"qps"`
	Solves          int64   `json:"solves"`
	CacheHits       int64   `json:"cache_hits"`
	Coalesced       int64   `json:"coalesced"`
}

// runPipelineJSON measures the pipeline stages, the service and a
// loadDur sustained-load window, and writes the report to path. scale
// shrinks instance sizes for smoke runs.
func runPipelineJSON(path string, scale float64, loadDur time.Duration) error {
	if scale <= 0 || scale > 1 {
		return fmt.Errorf("pipeline-json: scale must be in (0,1], got %v", scale)
	}
	scaled := func(n int) int {
		if s := int(float64(n) * scale); s >= 10 {
			return s
		}
		return 10
	}
	const k, t, deg = 2, 3, 8

	rep := pipelineReport{
		Schema:       pipelineSchema,
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		GnpGenerator: graph.GnpGenerator,
		Scale:        scale,
	}
	measure := func(op string, n, m, k, t int, fn func() error) error {
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return fmt.Errorf("pipeline bench %s: %w", op, benchErr)
		}
		rec := pipelineRecord{
			Op: op, N: n, M: m, K: k, T: t,
			NsPerOp:  r.NsPerOp(),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		}
		rep.Stages = append(rep.Stages, rec)
		fmt.Fprintf(os.Stderr, "pipeline %-18s n=%-6d %12d ns/op %8d allocs/op\n",
			op, n, rec.NsPerOp, rec.AllocsOp)
		return nil
	}

	// Stage 1: instance generation at service-typical and large sizes.
	genN := scaled(20000)
	genG := graph.GnpAvgDegree(genN, deg, 3)
	if err := measure("generate/gnp", genN, genG.NumEdges(), 0, 0, func() error {
		graph.GnpAvgDegree(genN, deg, 3)
		return nil
	}); err != nil {
		return err
	}

	// Stage 2: cache-key hashing of the generated graph.
	if err := measure("hash/canonical", genN, genG.NumEdges(), 0, 0, func() error {
		genG.CanonicalHash()
		return nil
	}); err != nil {
		return err
	}

	// Stage 3: the solve, fresh-allocating vs scratch-backed. The allocs_op
	// gap between these two records is the scratch payoff the PR claims.
	solveN := scaled(2000)
	solveG := graph.GnpAvgDegree(solveN, deg, 3)
	if err := measure("solve/fresh", solveN, solveG.NumEdges(), k, t, func() error {
		_, err := ftclust.SolveKMDS(solveG, k, ftclust.WithT(t), ftclust.WithSeed(1))
		return err
	}); err != nil {
		return err
	}
	sc := ftclust.NewScratch()
	if err := measure("solve/scratch", solveN, solveG.NumEdges(), k, t, func() error {
		_, err := ftclust.SolveKMDS(solveG, k, ftclust.WithT(t), ftclust.WithSeed(1), ftclust.WithScratch(sc))
		return err
	}); err != nil {
		return err
	}

	// Stage 3b: the same warm solve with every observer hook armed — the
	// per-phase clocks, alloc counters and summary callback the service
	// attaches to each cold solve. The delta against solve/scratch is the
	// instrumentation tax (reported as observer_overhead_pct).
	obsSc := ftclust.NewScratch()
	var phaseSink int
	observer := &ftclust.SolveObserver{
		OnPhase: func(p ftclust.SolvePhaseInfo) { phaseSink += p.Rounds },
		OnDone:  func(s ftclust.SolveStats) { phaseSink += s.LPRounds },
	}
	if err := measure("solve/scratch+observer", solveN, solveG.NumEdges(), k, t, func() error {
		_, err := ftclust.SolveKMDS(solveG, k, ftclust.WithT(t), ftclust.WithSeed(1),
			ftclust.WithScratch(obsSc), ftclust.WithObserver(observer))
		return err
	}); err != nil {
		return err
	}
	var plainNs, obsNs int64
	for _, st := range rep.Stages {
		switch st.Op {
		case "solve/scratch":
			plainNs = st.NsPerOp
		case "solve/scratch+observer":
			obsNs = st.NsPerOp
		}
	}
	if plainNs > 0 {
		rep.ObserverOverheadPct = 100 * float64(obsNs-plainNs) / float64(plainNs)
		fmt.Fprintf(os.Stderr, "pipeline %-18s %+.2f%%\n", "observer-overhead", rep.ObserverOverheadPct)
	}

	// Stage 4: the full per-request pipeline generate → hash → solve, the
	// work one cold /v1/solve costs before JSON and transport.
	pipeSc := ftclust.NewScratch()
	if err := measure("pipeline/gen+hash+solve", solveN, solveG.NumEdges(), k, t, func() error {
		g := graph.GnpAvgDegree(solveN, deg, 3)
		g.CanonicalHash()
		_, err := ftclust.SolveKMDS(g, k, ftclust.WithT(t), ftclust.WithSeed(1), ftclust.WithScratch(pipeSc))
		return err
	}); err != nil {
		return err
	}

	svc, err := measureService(scale)
	if err != nil {
		return err
	}
	rep.Service = svc
	fmt.Fprintf(os.Stderr, "pipeline %-18s %d requests, %.0f solve QPS (%d solves, %d hits, %d coalesced)\n",
		"service/http", svc.Requests, svc.QPS, svc.Solves, svc.CacheHits, svc.Coalesced)

	load, err := measureLoad(scale, loadDur)
	if err != nil {
		return err
	}
	rep.Load = &load
	fmt.Fprintf(os.Stderr,
		"pipeline %-18s %.1fs, %.0f QPS, solve p50/p99 %.2f/%.2f ms, http p50/p99 %.2f/%.2f ms\n",
		"load/http-solve", load.DurationSec, load.QPS,
		load.SolveP50Ms, load.SolveP99Ms, load.HTTPP50Ms, load.HTTPP99Ms)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}

// measureService fires a fixed mix of solve requests at an in-process
// service over HTTP: a handful of unique instances requested many times
// each from concurrent clients, the load shape the cache and coalescing
// layers exist for.
func measureService(scale float64) (serviceRecord, error) {
	const (
		unique      = 8
		repeats     = 25
		concurrency = 8
	)
	n := int(800 * scale)
	if n < 10 {
		n = 10
	}
	s := service.New(service.Config{Workers: 4, QueueDepth: 256})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reqs := make([]string, 0, unique*repeats)
	for r := 0; r < repeats; r++ {
		for u := 0; u < unique; u++ {
			reqs = append(reqs,
				fmt.Sprintf(`{"family":{"name":"gnp","n":%d,"degree":8,"seed":%d},"k":2}`, n, u+1))
		}
	}

	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	start := time.Now()
	jobs := make(chan string)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for body := range jobs {
				resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("service solve: status %d", resp.StatusCode)
					}
				}
				if err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for _, body := range reqs {
		jobs <- body
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return serviceRecord{}, firstErr
	}
	m := s.Metrics()
	return serviceRecord{
		Op:              "service/http-solve",
		Requests:        len(reqs),
		UniqueInstances: unique,
		Concurrency:     concurrency,
		QPS:             float64(len(reqs)) / elapsed.Seconds(),
		Solves:          m.Solves,
		CacheHits:       m.CacheHits,
		Coalesced:       m.Coalesced,
	}, nil
}
