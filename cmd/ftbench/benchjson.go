package main

// -bench-json mode: measure the in-memory core engines (SolveFractional,
// RoundSolution, SolveWeighted) across graph families, sizes and worker
// counts, and write a machine-readable JSON report so the performance
// trajectory of the repository is tracked in version control
// (BENCH_core.json at the repo root). See EXPERIMENTS.md ("Benchmark
// harness") for the schema and reproduction instructions.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"ftclust/internal/core"
	"ftclust/internal/graph"
)

// benchReport is the top-level BENCH_core.json document.
type benchReport struct {
	Schema      string `json:"schema"`
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	// GnpGenerator records which Gnp implementation produced the bench
	// graphs (graph.GnpGenerator); the geometric-skip rewrite changed the
	// per-seed edge sets, so reports across generator versions are not
	// instance-for-instance comparable.
	GnpGenerator string        `json:"gnp_generator"`
	Scale        float64       `json:"scale"`
	Benchmarks   []benchRecord `json:"benchmarks"`
}

// benchRecord is one measured configuration.
type benchRecord struct {
	Op       string `json:"op"`
	Family   string `json:"family"`
	N        int    `json:"n"`
	K        int    `json:"k"`
	T        int    `json:"t"`
	Workers  int    `json:"workers"`
	NsPerOp  int64  `json:"ns_op"`
	AllocsOp int64  `json:"allocs_op"`
	BytesOp  int64  `json:"bytes_op"`
	// SpeedupVsSequential is ns_op(workers=1)/ns_op for the same
	// (op, family, n); 0 on the sequential record itself. Always
	// populated on parallel records — read it together with num_cpu: on
	// a single-core machine the ratio documents worker-pool overhead
	// (≈ 1 is the pass bar there), while ≥ 4-core speedup claims are
	// asserted by the CI smoke job, not by a committed report.
	SpeedupVsSequential float64 `json:"speedup_vs_sequential,omitempty"`
}

func benchGraphFor(family string, n int) (*graph.Graph, error) {
	switch family {
	case "gnp":
		return graph.GnpAvgDegree(n, 12, 3), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return graph.Grid(side, side), nil
	case "powerlaw":
		return graph.PreferentialAttachment(n, 4, 5), nil
	}
	return nil, fmt.Errorf("unknown benchmark family %q", family)
}

// runBenchJSON measures every configuration and writes the report to path.
// scale shrinks the instance sizes for smoke runs (CI uses 0.05).
func runBenchJSON(path string, scale float64) error {
	if scale <= 0 || scale > 1 {
		return fmt.Errorf("bench-json: scale must be in (0,1], got %v", scale)
	}
	const k, t = 2, 3
	sizes := []int{1000, 5000}
	// Always measure one parallel configuration: GOMAXPROCS workers, or 4
	// on a single-core machine — there the speedup column reads ≈ 1 and
	// documents the worker-pool overhead instead.
	par := runtime.GOMAXPROCS(0)
	if par < 4 {
		par = 4
	}
	workerCounts := []int{1, par}

	rep := benchReport{
		Schema:       "ftclust-bench-core/v2",
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		GnpGenerator: graph.GnpGenerator,
		Scale:        scale,
	}

	// measure runs one configuration under testing.Benchmark, appends the
	// record and returns its ns/op so callers can compute speedup ratios.
	measure := func(op, family string, n, workers int, fn func() error) (int64, error) {
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return 0, fmt.Errorf("bench %s/%s/n=%d: %w", op, family, n, benchErr)
		}
		rec := benchRecord{
			Op: op, Family: family, N: n, K: k, T: t,
			Workers:  workers,
			NsPerOp:  r.NsPerOp(),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		}
		rep.Benchmarks = append(rep.Benchmarks, rec)
		fmt.Fprintf(os.Stderr, "bench %-24s %-8s n=%-6d workers=%-2d %12d ns/op %8d allocs/op\n",
			op, family, n, workers, rec.NsPerOp, rec.AllocsOp)
		return r.NsPerOp(), nil
	}
	// setSpeedup back-fills speedup_vs_sequential on the record just
	// appended.
	setSpeedup := func(seqNs, parNs int64) {
		if seqNs > 0 && parNs > 0 {
			rep.Benchmarks[len(rep.Benchmarks)-1].SpeedupVsSequential = float64(seqNs) / float64(parNs)
		}
	}

	for _, family := range []string{"gnp", "grid", "powerlaw"} {
		for _, baseN := range sizes {
			n := int(float64(baseN) * scale)
			if n < 10 {
				n = 10
			}
			g, err := benchGraphFor(family, n)
			if err != nil {
				return err
			}
			n = g.NumNodes() // grid rounds up to a full square
			kVec := core.EffectiveDemands(g, k)
			frac, err := core.SolveFractional(g, kVec, core.FractionalOptions{T: t})
			if err != nil {
				return err
			}
			costs := make([]float64, n)
			for v := range costs {
				costs[v] = 1 + float64(v%9)
			}

			sc := core.NewScratch()
			ops := []struct {
				name string
				run  func(workers int) error
			}{
				{"SolveFractional", func(workers int) error {
					_, err := core.SolveFractional(g, kVec, core.FractionalOptions{T: t, Workers: workers})
					return err
				}},
				{"SolveFractional/scratch", func(workers int) error {
					_, err := core.SolveFractional(g, kVec, core.FractionalOptions{
						T: t, Workers: workers, Scratch: sc,
					})
					return err
				}},
				{"RoundSolution", func(workers int) error {
					_, err := core.RoundSolution(g, kVec, frac.X, frac.Delta,
						core.RoundingOptions{Seed: 1, Workers: workers})
					return err
				}},
				{"SolveWeighted", func(workers int) error {
					_, err := core.SolveWeighted(g, core.WeightedOptions{
						K: k, T: t, Seed: 1, Costs: costs, Workers: workers,
					})
					return err
				}},
			}

			for _, op := range ops {
				var seqNs int64
				for _, workers := range workerCounts {
					ns, err := measure(op.name, family, n, workers, func() error { return op.run(workers) })
					if err != nil {
						return err
					}
					if workers == 1 {
						seqNs = ns
					} else {
						setSpeedup(seqNs, ns)
					}
				}
			}
		}
	}

	// Large-scale section: one gnp instance at n=100000 (scaled), fractional
	// solve only — the regime the bitset gating, guided chunking and
	// per-worker lanes are tuned for. Scratch-backed so the records track
	// compute, not first-touch allocation.
	{
		largeN := int(float64(100000) * scale)
		if largeN < 10 {
			largeN = 10
		}
		g := graph.GnpAvgDegree(largeN, 12, 3)
		kVec := core.EffectiveDemands(g, k)
		sc := core.NewScratch()
		var seqNs int64
		for _, workers := range workerCounts {
			ns, err := measure("SolveFractional/scratch", "gnp", largeN, workers, func() error {
				_, err := core.SolveFractional(g, kVec, core.FractionalOptions{
					T: t, Workers: workers, Scratch: sc,
				})
				return err
			})
			if err != nil {
				return err
			}
			if workers == 1 {
				seqNs = ns
			} else {
				setSpeedup(seqNs, ns)
			}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}
