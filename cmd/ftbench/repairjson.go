package main

// -repair-json mode: measure the incremental churn engine against the full
// re-solve it replaces and write a machine-readable JSON report
// (BENCH_repair.json at the repo root). Two sweeps:
//
//   - failure sweep: on a gnp instance, fail 1…256 heads in one batch and
//     record the repair-patch latency and touched-node count next to a
//     certified full re-solve of the same damaged instance — the
//     damage-proportionality evidence (touched scales with the batch, not
//     with n) and the patch-vs-resolve speedup.
//   - mobility sweep: drive a unit-disk deployment with the random-waypoint
//     model, feed each step's edge diff to the engine as a delta batch, and
//     record per-step patch latency, touched counts and drift fallbacks.
//
// See EXPERIMENTS.md ("Repair benchmark") for the schema and reproduction
// instructions.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"ftclust"
	"ftclust/internal/graph"
	"ftclust/internal/mobility"
)

// repairReport is the top-level BENCH_repair.json document.
type repairReport struct {
	Schema      string        `json:"schema"`
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	Scale       float64       `json:"scale"`
	Failure     failureSweep  `json:"failure_sweep"`
	Mobility    mobilitySweep `json:"mobility_sweep"`
}

// failureSweep batches head failures of growing size on one gnp instance.
type failureSweep struct {
	Family  string          `json:"family"`
	N       int             `json:"n"`
	Edges   int             `json:"edges"`
	Degree  float64         `json:"degree"`
	K       int             `json:"k"`
	Seed    int64           `json:"seed"`
	SetSize int             `json:"set_size"`
	Records []failureRecord `json:"records"`
}

// failureRecord is one damage level: fail `damage` heads in one batch.
type failureRecord struct {
	Damage     int   `json:"damage"`
	PatchNs    int64 `json:"patch_ns"` // min over repetitions
	Touched    int   `json:"touched"`
	Entered    int   `json:"entered"`
	Iterations int   `json:"iterations"`
	// ResolveNs is a certified full re-solve (solve + verify + adopt) of
	// the same damaged instance — what each patch replaces.
	ResolveNs int64   `json:"resolve_ns"`
	Speedup   float64 `json:"speedup_vs_resolve"`
}

// mobilitySweep streams random-waypoint edge churn through one engine.
type mobilitySweep struct {
	N         int              `json:"n"`
	Side      float64          `json:"side"`
	Speed     float64          `json:"speed"`
	K         int              `json:"k"`
	Seed      int64            `json:"seed"`
	Steps     int              `json:"steps"`
	Fallbacks int              `json:"fallbacks"`
	Records   []mobilityRecord `json:"records"`
}

// mobilityRecord is one mobility step absorbed as a delta batch.
type mobilityRecord struct {
	Step       int   `json:"step"`
	EdgeAdds   int   `json:"edge_adds"`
	EdgeDels   int   `json:"edge_dels"`
	PatchNs    int64 `json:"patch_ns"`
	Touched    int   `json:"touched"`
	Iterations int   `json:"iterations"`
	Entered    int   `json:"entered"`
	Left       int   `json:"left"`
	Fallback   bool  `json:"fallback"`
	// ResolveNs is the certified re-solve the drift fallback cost on this
	// step (0 when no fallback fired).
	ResolveNs int64 `json:"resolve_ns,omitempty"`
}

// runRepairJSON measures both sweeps and writes the report to path. scale
// shrinks the instance sizes for smoke runs.
func runRepairJSON(path string, scale float64, seed int64) error {
	if scale <= 0 || scale > 1 {
		return fmt.Errorf("repair-json: scale must be in (0,1], got %v", scale)
	}
	scaled := func(n int) int {
		n = int(float64(n) * scale)
		if n < 32 {
			n = 32
		}
		return n
	}
	rep := repairReport{
		Schema:      "ftclust-bench-repair/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Scale:       scale,
	}

	fs, err := runFailureSweep(scaled(20000), seed)
	if err != nil {
		return fmt.Errorf("repair-json failure sweep: %w", err)
	}
	rep.Failure = fs

	ms, err := runMobilitySweep(scaled(2000), seed)
	if err != nil {
		return fmt.Errorf("repair-json mobility sweep: %w", err)
	}
	rep.Mobility = ms

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}

func runFailureSweep(n int, seed int64) (failureSweep, error) {
	const k, degree = 2, 8.0
	g := graph.GnpAvgDegree(n, degree, seed)
	sol, err := ftclust.SolveKMDS(g, k, ftclust.WithT(3), ftclust.WithSeed(seed))
	if err != nil {
		return failureSweep{}, err
	}
	sweep := failureSweep{
		Family: "gnp", N: g.NumNodes(), Edges: g.NumEdges(),
		Degree: degree, K: k, Seed: seed, SetSize: sol.Size(),
	}

	for damage := 1; damage <= 256 && damage <= len(sol.Members); damage *= 2 {
		// Spread the failed heads across the whole member list so damage d
		// hits d separate neighborhoods, not one hot spot.
		stride := len(sol.Members) / damage
		heads := make([]ftclust.NodeID, damage)
		for i := range heads {
			heads[i] = sol.Members[i*stride]
		}
		batch := ftclust.FailOp(heads...)

		var rec failureRecord
		rec.Damage = damage
		const reps = 3
		for r := 0; r < reps; r++ {
			e, err := ftclust.NewChurnEngine(g, sol, k)
			if err != nil {
				return failureSweep{}, err
			}
			start := time.Now()
			p, err := e.Apply(batch)
			elapsed := time.Since(start).Nanoseconds()
			if err != nil {
				return failureSweep{}, err
			}
			if rec.PatchNs == 0 || elapsed < rec.PatchNs {
				rec.PatchNs = elapsed
			}
			rec.Touched, rec.Entered, rec.Iterations = p.Touched, len(p.Entered), p.Iterations
		}

		// The alternative each patch replaces: a certified full re-solve of
		// the damaged instance, adopted back into the engine.
		e, err := ftclust.NewChurnEngine(g, sol, k)
		if err != nil {
			return failureSweep{}, err
		}
		if _, err := e.Apply(batch); err != nil {
			return failureSweep{}, err
		}
		start := time.Now()
		if _, err := e.Resolve(ftclust.WithT(3), ftclust.WithSeed(seed)); err != nil {
			return failureSweep{}, err
		}
		rec.ResolveNs = time.Since(start).Nanoseconds()
		if rec.PatchNs > 0 {
			rec.Speedup = float64(rec.ResolveNs) / float64(rec.PatchNs)
		}
		sweep.Records = append(sweep.Records, rec)
		fmt.Fprintf(os.Stderr, "repair damage=%-4d patch %10d ns  touched %-6d resolve %12d ns  speedup %8.1fx\n",
			damage, rec.PatchNs, rec.Touched, rec.ResolveNs, rec.Speedup)
	}
	return sweep, nil
}

func runMobilitySweep(n int, seed int64) (mobilitySweep, error) {
	const (
		k     = 2
		steps = 20
		speed = 0.15 // max displacement per step, in units of the radio radius
	)
	// Pick the square's side so the unit-disk graph averages ~8 neighbors.
	side := math.Sqrt(float64(n) * math.Pi / 8)
	model := mobility.NewRandomWaypoint(n, side, speed, seed)

	pts := model.Points()
	sol, g, err := ftclust.SolveUDGKMDS(pts, k, ftclust.WithSeed(seed))
	if err != nil {
		return mobilitySweep{}, err
	}
	e, err := ftclust.NewChurnEngine(g, sol, k)
	if err != nil {
		return mobilitySweep{}, err
	}
	sweep := mobilitySweep{N: n, Side: side, Speed: speed, K: k, Seed: seed, Steps: steps}

	cur := g
	curSet := edgeSet(g)
	for step := 1; step <= steps; step++ {
		model.Step()
		next := ftclust.UnitDiskGraph(model.Points())
		nextSet := edgeSet(next)

		// Diff by iterating the graphs (deterministic CSR order), membership
		// via the sets.
		var ops []ftclust.ChurnOp
		adds, dels := 0, 0
		cur.Edges(func(u, v ftclust.NodeID) {
			if !nextSet[graph.Edge{U: u, V: v}] {
				ops = append(ops, ftclust.DelEdgeOp(u, v))
				dels++
			}
		})
		next.Edges(func(u, v ftclust.NodeID) {
			if !curSet[graph.Edge{U: u, V: v}] {
				ops = append(ops, ftclust.AddEdgeOp(u, v))
				adds++
			}
		})

		rec := mobilityRecord{Step: step, EdgeAdds: adds, EdgeDels: dels}
		if len(ops) > 0 {
			start := time.Now()
			p, err := e.Apply(ops...)
			rec.PatchNs = time.Since(start).Nanoseconds()
			if err != nil {
				return mobilitySweep{}, fmt.Errorf("step %d: %w", step, err)
			}
			rec.Touched, rec.Iterations = p.Touched, p.Iterations
			rec.Entered, rec.Left = len(p.Entered), len(p.Left)
			if p.DriftExceeded {
				rec.Fallback = true
				sweep.Fallbacks++
				start := time.Now()
				if _, err := e.Resolve(ftclust.WithSeed(seed)); err != nil {
					return mobilitySweep{}, fmt.Errorf("step %d resolve: %w", step, err)
				}
				rec.ResolveNs = time.Since(start).Nanoseconds()
			}
		}
		sweep.Records = append(sweep.Records, rec)
		fmt.Fprintf(os.Stderr, "mobility step=%-3d +%-4d -%-4d patch %10d ns  touched %-6d fallback=%v\n",
			step, adds, dels, rec.PatchNs, rec.Touched, rec.Fallback)
		cur, curSet = next, nextSet
	}
	return sweep, nil
}

// edgeSet indexes a graph's edges with U < V, matching Graph.Edges order.
func edgeSet(g *ftclust.Graph) map[graph.Edge]bool {
	set := make(map[graph.Edge]bool, g.NumEdges())
	g.Edges(func(u, v ftclust.NodeID) { set[graph.Edge{U: u, V: v}] = true })
	return set
}
