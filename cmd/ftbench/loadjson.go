package main

// -load-json mode: hold a sustained request load against an in-process
// service for a fixed wall-clock window, then read the latency story
// back from the service's own /metrics histograms (Prometheus text
// exposition) instead of harness-side stopwatches. A one-shot QPS
// number hides tail behavior; the histogram scrape reports the p50/p99
// the service itself would show a production scrape, with queue wait
// and cache hits attributed exactly the way the metrics pipeline
// attributes them. The record merges into BENCH_pipeline.json under the
// "load" key (schema ftclust-bench-pipeline/v2).

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ftclust/internal/graph"
	"ftclust/internal/service"
)

// maxLoadBody caps how much of any harness-side HTTP response (solve
// replies, the /metrics scrape) is buffered. The in-process server is
// trusted, but the read-bound contract is module-wide.
const maxLoadBody = 64 << 20

// loadRecord is the sustained-load section of BENCH_pipeline.json.
// Latency quantiles are interpolated from the scraped histogram buckets,
// so they match what the service's /debug/metrics snapshot reports.
type loadRecord struct {
	Op              string  `json:"op"`
	DurationSec     float64 `json:"duration_sec"`
	Concurrency     int     `json:"concurrency"`
	UniqueInstances int     `json:"unique_instances"`
	// ColdFraction is the share of requests issued with a never-seen seed,
	// keeping the solve histogram fed for the whole window instead of
	// degenerating into pure cache hits after warmup.
	ColdFraction float64 `json:"cold_fraction"`
	Requests     int64   `json:"requests"`
	QPS          float64 `json:"qps"`
	Solves       int64   `json:"solves"`
	CacheHits    int64   `json:"cache_hits"`
	Coalesced    int64   `json:"coalesced"`
	// Solve quantiles come from ftclust_solve_duration_seconds (solver job
	// wall time, cold solves only); HTTP quantiles from
	// ftclust_http_request_duration_seconds{endpoint="/v1/solve"}, which
	// every request — hit, miss or coalesced — passes through.
	SolveP50Ms     float64 `json:"solve_p50_ms"`
	SolveP99Ms     float64 `json:"solve_p99_ms"`
	HTTPP50Ms      float64 `json:"http_p50_ms"`
	HTTPP99Ms      float64 `json:"http_p99_ms"`
	SolveSamples   int64   `json:"solve_samples"`
	HTTPSamples    int64   `json:"http_samples"`
	MetricsScraped bool    `json:"metrics_scraped"`
}

// measureLoad drives the closed-loop client mix for dur and scrapes the
// resulting histograms.
func measureLoad(scale float64, dur time.Duration) (loadRecord, error) {
	const (
		unique      = 8
		concurrency = 8
		coldEvery   = 4 // every 4th request uses a fresh seed
	)
	n := int(600 * scale)
	if n < 10 {
		n = 10
	}
	s := service.New(service.Config{Workers: 4, QueueDepth: 256})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var (
		wg       sync.WaitGroup
		seq      atomic.Int64
		requests atomic.Int64
		firstErr error
		errOnce  sync.Once
	)
	deadline := time.Now().Add(dur)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				i := seq.Add(1)
				seed := i%unique + 1 // hot set: repeat seeds → cache hits
				if i%coldEvery == 0 {
					seed = 1000 + i // cold: never-seen instance → real solve
				}
				body := fmt.Sprintf(`{"family":{"name":"gnp","n":%d,"degree":8,"seed":%d},"k":2}`, n, seed)
				resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
				if err == nil {
					io.Copy(io.Discard, io.LimitReader(resp.Body, maxLoadBody))
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("load solve: status %d", resp.StatusCode)
					}
				}
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				requests.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return loadRecord{}, firstErr
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return loadRecord{}, fmt.Errorf("scraping /metrics: %w", err)
	}
	text, err := io.ReadAll(io.LimitReader(resp.Body, maxLoadBody))
	resp.Body.Close()
	if err != nil {
		return loadRecord{}, fmt.Errorf("reading /metrics: %w", err)
	}
	solveBk, err := promBuckets(string(text), "ftclust_solve_duration_seconds", "")
	if err != nil {
		return loadRecord{}, err
	}
	httpBk, err := promBuckets(string(text), "ftclust_http_request_duration_seconds", "/v1/solve")
	if err != nil {
		return loadRecord{}, err
	}

	m := s.Metrics()
	rec := loadRecord{
		Op:              "load/http-solve",
		DurationSec:     elapsed.Seconds(),
		Concurrency:     concurrency,
		UniqueInstances: unique,
		ColdFraction:    1.0 / coldEvery,
		Requests:        requests.Load(),
		QPS:             float64(requests.Load()) / elapsed.Seconds(),
		Solves:          m.Solves,
		CacheHits:       m.CacheHits,
		Coalesced:       m.Coalesced,
		SolveP50Ms:      1e3 * bucketQuantile(solveBk, 0.50),
		SolveP99Ms:      1e3 * bucketQuantile(solveBk, 0.99),
		HTTPP50Ms:       1e3 * bucketQuantile(httpBk, 0.50),
		HTTPP99Ms:       1e3 * bucketQuantile(httpBk, 0.99),
		SolveSamples:    bucketTotal(solveBk),
		HTTPSamples:     bucketTotal(httpBk),
		MetricsScraped:  true,
	}
	return rec, nil
}

// promBucket is one cumulative histogram bucket from the exposition.
type promBucket struct {
	le  float64 // upper bound; +Inf for the overflow bucket
	cum int64
}

// promBuckets extracts the _bucket series of metric from Prometheus text
// exposition. endpoint filters on an endpoint="…" label when non-empty.
func promBuckets(text, metric, endpoint string) ([]promBucket, error) {
	prefix := metric + "_bucket{"
	var out []promBucket
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		end := strings.IndexByte(rest, '}')
		sp := strings.LastIndexByte(rest, ' ')
		if end < 0 || sp < end {
			return nil, fmt.Errorf("malformed exposition line %q", line)
		}
		labels := rest[:end]
		if endpoint != "" && !strings.Contains(labels, `endpoint="`+endpoint+`"`) {
			continue
		}
		le := ""
		for _, lv := range strings.Split(labels, ",") {
			if v, ok := strings.CutPrefix(lv, `le="`); ok {
				le = strings.TrimSuffix(v, `"`)
			}
		}
		if le == "" {
			return nil, fmt.Errorf("bucket line without le label: %q", line)
		}
		bound := math.Inf(1)
		if le != "+Inf" {
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return nil, fmt.Errorf("parsing le=%q: %w", le, err)
			}
			bound = b
		}
		cum, err := strconv.ParseInt(strings.TrimSpace(rest[sp+1:]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parsing bucket count in %q: %w", line, err)
		}
		out = append(out, promBucket{le: bound, cum: cum})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no %s buckets in /metrics exposition", metric)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].le < out[j].le })
	return out, nil
}

// bucketTotal returns the observation count (the +Inf cumulative value).
func bucketTotal(bs []promBucket) int64 { return bs[len(bs)-1].cum }

// bucketQuantile mirrors obs.Histogram.Quantile on scraped cumulative
// buckets: linear interpolation inside the bucket holding the target
// rank, ranks in the overflow bucket clamped to the largest finite bound.
func bucketQuantile(bs []promBucket, q float64) float64 {
	total := bucketTotal(bs)
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	prevCum := int64(0)
	maxFinite := 0.0
	for i, b := range bs {
		if !math.IsInf(b.le, 1) {
			maxFinite = b.le
		}
		n := b.cum - prevCum
		if n > 0 && float64(b.cum) >= rank {
			if math.IsInf(b.le, 1) {
				return maxFinite
			}
			lo := 0.0
			if i > 0 {
				lo = bs[i-1].le
			}
			frac := (rank - float64(prevCum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (b.le-lo)*frac
		}
		prevCum = b.cum
	}
	return maxFinite
}

// runLoadJSON runs the sustained-load harness and merges the record into
// the pipeline report at path, preserving any stages already measured by
// -pipeline-json. A missing file yields a report holding only the
// environment header and the load section.
func runLoadJSON(path string, scale float64, dur time.Duration) error {
	if scale <= 0 || scale > 1 {
		return fmt.Errorf("load-json: scale must be in (0,1], got %v", scale)
	}
	if dur <= 0 {
		return fmt.Errorf("load-json: duration must be positive, got %v", dur)
	}
	rep := pipelineReport{}
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &rep); err != nil {
			return fmt.Errorf("load-json: parsing existing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	rec, err := measureLoad(scale, dur)
	if err != nil {
		return err
	}
	rep.Schema = pipelineSchema
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.GoVersion = runtime.Version()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.NumCPU = runtime.NumCPU()
	rep.GnpGenerator = graph.GnpGenerator
	rep.Scale = scale
	rep.Load = &rec
	fmt.Fprintf(os.Stderr,
		"load %-18s %.1fs %d requests (%.0f QPS, %d solves, %d hits) solve p50/p99 %.2f/%.2f ms, http p50/p99 %.2f/%.2f ms\n",
		rec.Op, rec.DurationSec, rec.Requests, rec.QPS, rec.Solves, rec.CacheHits,
		rec.SolveP50Ms, rec.SolveP99Ms, rec.HTTPP50Ms, rec.HTTPP99Ms)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}
