// Command gengraph generates benchmark instances: random graphs from the
// supported families, or random sensor deployments (point sets) for the
// unit-disk-graph algorithm.
//
// Usage:
//
//	gengraph -family gnp -n 500 -d 10 -seed 1 -o instance.graph
//	gengraph -deploy -n 1000 -density 20 -seed 1 -o field.points
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"ftclust/internal/geom"
	"ftclust/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family  = flag.String("family", "gnp", "graph family: gnp|regular|grid|tree|powerlaw|ring")
		n       = flag.Int("n", 200, "number of nodes")
		d       = flag.Float64("d", 8, "average-degree knob (per family)")
		seed    = flag.Int64("seed", 1, "random seed")
		deploy  = flag.Bool("deploy", false, "generate a sensor deployment (points) instead of a graph")
		density = flag.Float64("density", 20, "deployment density: expected nodes per unit-disk area")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *deploy {
		side := math.Sqrt(float64(*n) * math.Pi / *density)
		pts := geom.UniformPoints(*n, side, *seed)
		return geom.WritePoints(w, pts)
	}
	g, err := graph.Generate(graph.Family(*family), *n, *d, *seed)
	if err != nil {
		return err
	}
	return graph.Write(w, g)
}
