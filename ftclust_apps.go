package ftclust

// Application-layer API: the network-lifecycle services built around the
// clustering core — neighborhood discovery (bootstrap), TDMA scheduling,
// backbone routing, and incremental repair under churn.

import (
	"fmt"

	"ftclust/internal/graph"
	"ftclust/internal/maintain"
	"ftclust/internal/radio"
	"ftclust/internal/routing"
	"ftclust/internal/tdma"
)

// DiscoveryResult reports a slotted-ALOHA neighbor-discovery run.
type DiscoveryResult struct {
	// Graph is the communication graph assembled from the mutually
	// discovered neighbor relations.
	Graph *Graph
	// Slots is the number of slots until every node knew all neighbors,
	// or -1 if the budget elapsed first (Graph then contains the partial
	// knowledge).
	Slots int
	// Complete reports whether discovery finished within the budget.
	Complete bool
}

// DiscoverNeighbors simulates the slotted-ALOHA initialization phase of a
// freshly deployed network (no neighbor knowledge, collision channel) on
// the true unit disk graph of pts and returns the discovered communication
// graph. With default options every node transmits with probability
// 1/(Δ+1) per slot.
func DiscoverNeighbors(pts []Point, seed int64) (*DiscoveryResult, error) {
	truth := UnitDiskGraph(pts)
	res, err := radio.Discover(truth, radio.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	// Keep an edge when both endpoints heard each other (bidirectional
	// links only, matching the Section 3 model).
	b := graph.NewBuilder(truth.NumNodes())
	truth.Edges(func(u, v NodeID) {
		if res.Discovered[u][v] && res.Discovered[v][u] {
			b.TryAddEdge(u, v)
		}
	})
	return &DiscoveryResult{
		Graph:    b.Build(),
		Slots:    res.SlotsToComplete,
		Complete: res.SlotsToComplete >= 0,
	}, nil
}

// TDMASchedule is the two-level frame produced by BuildTDMA.
type TDMASchedule struct {
	// HeadSlot[v] is head v's control slot (-1 for non-heads).
	HeadSlot []int
	// MemberSlot[v] is node v's intra-cluster data slot (-1 for heads).
	MemberSlot []int
	// Head[v] is the head node v is affiliated with.
	Head []NodeID
	// FrameLength is the total slots per frame.
	FrameLength int
}

// BuildTDMA derives a collision-free two-level TDMA frame from a
// clustering solution: distance-2-colored control slots for heads,
// per-cluster data slots for members.
func BuildTDMA(g *Graph, sol *Solution) (*TDMASchedule, error) {
	s, err := tdma.Build(g, sol.InSet)
	if err != nil {
		return nil, err
	}
	if err := tdma.Validate(g, sol.InSet, s); err != nil {
		return nil, fmt.Errorf("ftclust: internal error: %w", err)
	}
	return &TDMASchedule{
		HeadSlot:    s.HeadSlot,
		MemberSlot:  s.MemberSlot,
		Head:        s.Head,
		FrameLength: s.FrameLength(),
	}, nil
}

// RepairAfterFailures restores k-fold domination after the nodes in dead
// fail, promoting only where coverage is deficient. It returns the
// repaired solution and the number of newly promoted nodes.
func RepairAfterFailures(g *Graph, sol *Solution, dead []NodeID, k int) (*Solution, int, error) {
	dm := make(map[NodeID]bool, len(dead))
	for _, v := range dead {
		dm[v] = true
	}
	res, err := maintain.Repair(g, sol.InSet, dm, k)
	if err != nil {
		return nil, 0, err
	}
	return &Solution{
		InSet:     res.InSet,
		Members:   setFromMask(res.InSet),
		Rounds:    res.Iterations,
		Algorithm: sol.Algorithm + " + repair",
	}, res.Promoted, nil
}

// ChurnOpKind selects the kind of a ChurnOp.
type ChurnOpKind int

// Churn operation kinds, value-identical to the engine's so conversion is
// a cast.
const (
	ChurnFail    = ChurnOpKind(maintain.OpFail)
	ChurnRevive  = ChurnOpKind(maintain.OpRevive)
	ChurnAddEdge = ChurnOpKind(maintain.OpAddEdge)
	ChurnDelEdge = ChurnOpKind(maintain.OpDelEdge)
	ChurnAddNode = ChurnOpKind(maintain.OpAddNode)
)

// ChurnOp is one operation in a churn batch. Build ops with the
// constructors (FailOp, ReviveOp, AddEdgeOp, DelEdgeOp, AddNodeOp).
type ChurnOp struct {
	Kind  ChurnOpKind
	Nodes []NodeID // fail / revive
	U, V  NodeID   // add_edge / del_edge
}

// FailOp marks the given nodes dead (idempotent for already-dead nodes).
func FailOp(nodes ...NodeID) ChurnOp { return ChurnOp{Kind: ChurnFail, Nodes: nodes} }

// ReviveOp brings nodes back as live non-members.
func ReviveOp(nodes ...NodeID) ChurnOp { return ChurnOp{Kind: ChurnRevive, Nodes: nodes} }

// AddEdgeOp inserts the undirected edge {u, v}.
func AddEdgeOp(u, v NodeID) ChurnOp { return ChurnOp{Kind: ChurnAddEdge, U: u, V: v} }

// DelEdgeOp removes the undirected edge {u, v}.
func DelEdgeOp(u, v NodeID) ChurnOp { return ChurnOp{Kind: ChurnDelEdge, U: u, V: v} }

// AddNodeOp appends a fresh isolated live node.
func AddNodeOp() ChurnOp { return ChurnOp{Kind: ChurnAddNode} }

// ChurnPatch reports what one Apply call changed: the membership diff, the
// repair effort, and whether accumulated topology drift crossed the bound
// (a hint to call Resolve for a certified full re-solve).
type ChurnPatch struct {
	// Entered and Left are the nodes that joined and departed the
	// dominating set, ascending.
	Entered, Left []NodeID
	// AddedNodes are the IDs assigned to AddNodeOp ops, in op order.
	AddedNodes []NodeID
	// Iterations is the number of promotion rounds the repair ran.
	Iterations int
	// Touched counts distinct nodes the repair inspected — the damage
	// proportionality measure (scales with the dirty region, not n).
	Touched int
	// LostHeads, NewlyDead and Revived count membership and liveness
	// transitions caused by the batch itself.
	LostHeads, NewlyDead, Revived int
	// DeficientBefore is how many live nodes were under-covered after the
	// batch mutations, before repair.
	DeficientBefore int
	// DriftExceeded reports that overlay drift passed the engine's bound;
	// repairs stay correct, but Resolve will recover full solve quality.
	DriftExceeded bool
}

// ChurnEngine maintains a k-fold dominating set under node failures,
// revivals and topology changes with damage-proportional incremental
// repairs — the long-lived form of RepairAfterFailures. Batches are
// transactional: Apply validates every op against current state first and
// rejects the whole batch without mutating anything if any op is invalid.
// Between batches every live node keeps min(k, liveDeg+1) live dominators
// in its closed neighborhood, so the maintained set is always feasible.
//
// ChurnEngine is not safe for concurrent use; guard it with a mutex when
// sharing (the service layer does exactly that per session).
type ChurnEngine struct {
	eng *maintain.Engine
}

// NewChurnEngine starts maintaining sol (a feasible k-fold dominating set
// on g, e.g. from SolveKMDS) under churn. The graph is copied into the
// engine's overlay; later changes to g are not observed.
func NewChurnEngine(g *Graph, sol *Solution, k int) (*ChurnEngine, error) {
	eng, err := maintain.NewEngine(g, sol.InSet, k, maintain.Options{})
	if err != nil {
		return nil, err
	}
	return &ChurnEngine{eng: eng}, nil
}

// Apply validates the whole batch and then applies it, repairing coverage
// incrementally. On error nothing was changed.
func (e *ChurnEngine) Apply(ops ...ChurnOp) (*ChurnPatch, error) {
	mops := make([]maintain.Op, len(ops))
	for i, op := range ops {
		mops[i] = maintain.Op{
			Kind:  maintain.OpKind(op.Kind),
			Nodes: op.Nodes,
			U:     op.U,
			V:     op.V,
		}
	}
	if err := e.eng.Validate(mops); err != nil {
		return nil, err
	}
	p := e.eng.Apply(mops)
	return &ChurnPatch{
		Entered:         p.Entered,
		Left:            p.Left,
		AddedNodes:      p.AddedNodes,
		Iterations:      p.Iterations,
		Touched:         p.Touched,
		LostHeads:       p.LostHeads,
		NewlyDead:       p.NewlyDead,
		Revived:         p.Revived,
		DeficientBefore: p.DeficientBefore,
		DriftExceeded:   p.DriftExceeded,
	}, nil
}

// Solution snapshots the maintained dominating set.
func (e *ChurnEngine) Solution() *Solution {
	mask := e.eng.InSet()
	return &Solution{
		InSet:     mask,
		Members:   setFromMask(mask),
		Algorithm: "churn-engine",
	}
}

// N returns the current node count (grows with AddNodeOp).
func (e *ChurnEngine) N() int { return e.eng.N() }

// Size returns the current dominating-set size.
func (e *ChurnEngine) Size() int { return e.eng.Size() }

// DeadCount returns how many nodes are currently dead.
func (e *ChurnEngine) DeadCount() int { return e.eng.DeadCount() }

// IsDead reports node v's liveness.
func (e *ChurnEngine) IsDead(v NodeID) bool { return e.eng.IsDead(v) }

// Drift returns the accumulated topology drift (edge changes plus added
// nodes) since the engine last compacted its overlay.
func (e *ChurnEngine) Drift() int { return e.eng.Drift() }

// Resolve runs the full deterministic solver on the live subgraph,
// verifies the result, and adopts it — the recovery path after a patch
// reported DriftExceeded, trading one full solve for a compact overlay and
// an incrementally-repaired set replaced by a freshly optimized one. The
// incremental state stays valid if Resolve errors.
func (e *ChurnEngine) Resolve(opts ...Option) (*Solution, error) {
	sub, ids := e.eng.LiveSubgraph()
	if sub.NumNodes() == 0 {
		// All nodes dead: the empty set is vacuously feasible.
		if _, _, err := e.eng.SetMask(make([]bool, e.eng.N())); err != nil {
			return nil, err
		}
		return e.Solution(), nil
	}
	sol, err := SolveKMDS(sub, e.eng.K(), opts...)
	if err != nil {
		return nil, err
	}
	if err := Verify(sub, sol, e.eng.K(), ClosedPP); err != nil {
		return nil, fmt.Errorf("ftclust: resolve certification failed: %w", err)
	}
	mask := make([]bool, e.eng.N())
	for _, v := range sol.Members {
		mask[ids[v]] = true
	}
	if _, _, err := e.eng.SetMask(mask); err != nil {
		return nil, err
	}
	return e.Solution(), nil
}

// RouteLength returns the hop count from src to dst when all intermediate
// hops must be members of the (connected) backbone solution; ok is false
// for disconnected pairs. Build the backbone with ConnectBackbone first.
func RouteLength(g *Graph, backbone *Solution, src, dst NodeID) (hops int, ok bool, err error) {
	r, err := routing.New(g, backbone.InSet)
	if err != nil {
		return 0, false, err
	}
	h, ok := r.PathLength(src, dst)
	return h, ok, nil
}

func setFromMask(mask []bool) []NodeID {
	var out []NodeID
	for v, in := range mask {
		if in {
			out = append(out, NodeID(v))
		}
	}
	return out
}
