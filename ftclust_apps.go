package ftclust

// Application-layer API: the network-lifecycle services built around the
// clustering core — neighborhood discovery (bootstrap), TDMA scheduling,
// backbone routing, and incremental repair under churn.

import (
	"fmt"

	"ftclust/internal/graph"
	"ftclust/internal/maintain"
	"ftclust/internal/radio"
	"ftclust/internal/routing"
	"ftclust/internal/tdma"
)

// DiscoveryResult reports a slotted-ALOHA neighbor-discovery run.
type DiscoveryResult struct {
	// Graph is the communication graph assembled from the mutually
	// discovered neighbor relations.
	Graph *Graph
	// Slots is the number of slots until every node knew all neighbors,
	// or -1 if the budget elapsed first (Graph then contains the partial
	// knowledge).
	Slots int
	// Complete reports whether discovery finished within the budget.
	Complete bool
}

// DiscoverNeighbors simulates the slotted-ALOHA initialization phase of a
// freshly deployed network (no neighbor knowledge, collision channel) on
// the true unit disk graph of pts and returns the discovered communication
// graph. With default options every node transmits with probability
// 1/(Δ+1) per slot.
func DiscoverNeighbors(pts []Point, seed int64) (*DiscoveryResult, error) {
	truth := UnitDiskGraph(pts)
	res, err := radio.Discover(truth, radio.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	// Keep an edge when both endpoints heard each other (bidirectional
	// links only, matching the Section 3 model).
	b := graph.NewBuilder(truth.NumNodes())
	truth.Edges(func(u, v NodeID) {
		if res.Discovered[u][v] && res.Discovered[v][u] {
			b.TryAddEdge(u, v)
		}
	})
	return &DiscoveryResult{
		Graph:    b.Build(),
		Slots:    res.SlotsToComplete,
		Complete: res.SlotsToComplete >= 0,
	}, nil
}

// TDMASchedule is the two-level frame produced by BuildTDMA.
type TDMASchedule struct {
	// HeadSlot[v] is head v's control slot (-1 for non-heads).
	HeadSlot []int
	// MemberSlot[v] is node v's intra-cluster data slot (-1 for heads).
	MemberSlot []int
	// Head[v] is the head node v is affiliated with.
	Head []NodeID
	// FrameLength is the total slots per frame.
	FrameLength int
}

// BuildTDMA derives a collision-free two-level TDMA frame from a
// clustering solution: distance-2-colored control slots for heads,
// per-cluster data slots for members.
func BuildTDMA(g *Graph, sol *Solution) (*TDMASchedule, error) {
	s, err := tdma.Build(g, sol.InSet)
	if err != nil {
		return nil, err
	}
	if err := tdma.Validate(g, sol.InSet, s); err != nil {
		return nil, fmt.Errorf("ftclust: internal error: %w", err)
	}
	return &TDMASchedule{
		HeadSlot:    s.HeadSlot,
		MemberSlot:  s.MemberSlot,
		Head:        s.Head,
		FrameLength: s.FrameLength(),
	}, nil
}

// RepairAfterFailures restores k-fold domination after the nodes in dead
// fail, promoting only where coverage is deficient. It returns the
// repaired solution and the number of newly promoted nodes.
func RepairAfterFailures(g *Graph, sol *Solution, dead []NodeID, k int) (*Solution, int, error) {
	dm := make(map[NodeID]bool, len(dead))
	for _, v := range dead {
		dm[v] = true
	}
	res, err := maintain.Repair(g, sol.InSet, dm, k)
	if err != nil {
		return nil, 0, err
	}
	return &Solution{
		InSet:     res.InSet,
		Members:   setFromMask(res.InSet),
		Rounds:    res.Iterations,
		Algorithm: sol.Algorithm + " + repair",
	}, res.Promoted, nil
}

// RouteLength returns the hop count from src to dst when all intermediate
// hops must be members of the (connected) backbone solution; ok is false
// for disconnected pairs. Build the backbone with ConnectBackbone first.
func RouteLength(g *Graph, backbone *Solution, src, dst NodeID) (hops int, ok bool, err error) {
	r, err := routing.New(g, backbone.InSet)
	if err != nil {
		return 0, false, err
	}
	h, ok := r.PathLength(src, dst)
	return h, ok, nil
}

func setFromMask(mask []bool) []NodeID {
	var out []NodeID
	for v, in := range mask {
		if in {
			out = append(out, NodeID(v))
		}
	}
	return out
}
