package ftclust

// claims_test.go states each claim of the paper as an executable test at
// the public-API level. The internal packages verify the same claims in
// depth (and at larger scale); this file is the quick, readable index.

import (
	"math"
	"testing"

	"ftclust/internal/core"
	"ftclust/internal/exp"
	"ftclust/internal/geom"
	"ftclust/internal/graph"
	"ftclust/internal/lp"
	"ftclust/internal/sim"
	"ftclust/internal/udg"
	"ftclust/internal/verify"
)

// Theorem 4.5: Algorithm 1 computes a feasible fractional solution in
// O(t²) rounds with ratio ≤ t((Δ+1)^{2/t} + (Δ+1)^{1/t}).
func TestClaimTheorem45(t *testing.T) {
	g := graph.Gnp(150, 0.1, 11)
	k := core.EffectiveDemands(g, 2)
	c := lp.FromGraph(g, k)
	_, opt, err := c.SolveFractional()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []int{1, 2, 4} {
		res, err := core.SolveFractional(g, k, core.FractionalOptions{T: tt})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.CheckPrimal(res.X, 1e-9); err != nil {
			t.Errorf("t=%d: infeasible: %v", tt, err)
		}
		if got, bound := res.Objective()/opt, core.TheoreticalRatio(tt, res.Delta); got > bound {
			t.Errorf("t=%d: ratio %.3f > bound %.3f", tt, got, bound)
		}
		if res.LoopRounds != 2*tt*tt {
			t.Errorf("t=%d: rounds %d ≠ 2t²", tt, res.LoopRounds)
		}
	}
}

// Lemmas 4.3 and 4.4: the dual certificate satisfies the dual-fitting
// identity exactly and is feasible up to κ = t(Δ+1)^{1/t}.
func TestClaimDualCertificate(t *testing.T) {
	g := graph.Gnp(120, 0.12, 5)
	k := core.EffectiveDemands(g, 3)
	res, err := core.SolveFractional(g, k, core.FractionalOptions{T: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(res.DualObjective(k) - res.BetaSum); d > 1e-8 {
		t.Errorf("Lemma 4.3 identity residual %v", d)
	}
	c := lp.FromGraph(g, k)
	if v := c.DualViolation(res.Y, res.Z); v > res.Kappa+1e-9 {
		t.Errorf("Lemma 4.4: violation %v > κ %v", v, res.Kappa)
	}
}

// Theorem 4.6: rounding yields a feasible integral solution whose size is
// within ln(Δ+1)+O(1) of the fractional objective (checked in expectation
// over seeds with generous slack).
func TestClaimTheorem46(t *testing.T) {
	g := graph.Gnp(200, 0.08, 2)
	k := core.EffectiveDemands(g, 2)
	frac, err := core.SolveFractional(g, k, core.FractionalOptions{T: 3})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	const trials = 10
	for seed := int64(0); seed < trials; seed++ {
		r, err := core.RoundSolution(g, k, frac.X, frac.Delta, core.RoundingOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.CheckKFoldVector(g, r.InSet, k, verify.ClosedPP); err != nil {
			t.Fatalf("seed %d: infeasible: %v", seed, err)
		}
		total += float64(r.Size())
	}
	blowup := total / trials / frac.Objective()
	if bound := core.RoundingBlowupBound(frac.Delta); blowup > bound {
		t.Errorf("mean blowup %.2f > %.2f", blowup, bound)
	}
}

// Lemma 5.1: Part I of Algorithm 3 outputs a dominating set.
func TestClaimLemma51(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		pts, g, idx := exp.UDGInstance(300, 15, seed)
		res, err := udg.Solve(pts, g, idx, udg.Options{K: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.CheckKFold(g, res.PartILeader, 1, verify.Standard); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// Theorem 5.7 (shape): Algorithm 3 runs in O(log log n) rounds, outputs a
// k-fold dominating set whose density per unit disk is O(k).
func TestClaimTheorem57(t *testing.T) {
	pts, g, idx := exp.UDGInstance(2000, 20, 3)
	const k = 3
	res, err := udg.Solve(pts, g, idx, udg.Options{K: k, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckKFold(g, res.Leader, k, verify.ClosedPP); err != nil {
		t.Fatal(err)
	}
	if want := geom.PartIRounds(2000); res.PartIRounds != want {
		t.Errorf("rounds %d ≠ ⌈log₁.₅log₂n⌉ = %d", res.PartIRounds, want)
	}
	counts := udg.LeadersPerDisk(pts, res.Leader)
	mean := 0.0
	for _, c := range counts {
		mean += float64(c)
	}
	mean /= float64(len(counts))
	if mean > 6*k {
		t.Errorf("mean leaders/disk %.2f not O(k)", mean)
	}
}

// Section 3 model: both algorithms use O(log n)-bit messages, measured by
// the simulator's bit accounting.
func TestClaimMessageSizes(t *testing.T) {
	g := graph.GnpAvgDegree(256, 10, 1)
	res, err := sim.New(g, sim.WithSeed(1)).Run(func(v graph.NodeID) sim.Program {
		return core.NewProgram(v, core.ProgramConfig{K: 2, T: 2, Delta: g.MaxDegree(), Round: true})
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if bits := res.Metrics.MaxMessageBits; bits > 2*sim.FixedPointBits(256)+sim.BitsForCount(256) {
		t.Errorf("max message %d bits exceeds the O(log n) budget", bits)
	}
}

// Section 1 definition: any k−1 dominator failures leave every node
// covered.
func TestClaimFaultTolerance(t *testing.T) {
	pts := UniformDeployment(400, 5, 6)
	const k = 4
	sol, g, err := SolveUDGKMDS(pts, k, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	// Kill the k-1 = 3 dominators of the node with the fewest dominators:
	// the worst adversarial choice for a single victim.
	for victim := 0; victim < g.NumNodes(); victim += 37 {
		if sol.InSet[victim] {
			continue
		}
		var doms []NodeID
		for _, w := range g.Neighbors(NodeID(victim)) {
			if sol.InSet[w] {
				doms = append(doms, w)
			}
		}
		if len(doms) < k {
			continue // capped demand (low degree)
		}
		unc, _ := SurvivesFailures(g, sol, doms[:k-1])
		if unc != 0 {
			t.Fatalf("victim %d uncovered after k-1 kills", victim)
		}
	}
}

// Section 3 remark (Awerbuch): the algorithms run unchanged over an
// asynchronous network via a synchronizer, with identical results.
func TestClaimAsynchronousExecution(t *testing.T) {
	g := graph.Gnp(60, 0.15, 9)
	mk := func(v graph.NodeID) sim.Program {
		return core.NewProgram(v, core.ProgramConfig{K: 2, T: 2, Delta: g.MaxDegree(), Round: true})
	}
	syn, err := sim.New(g, sim.WithSeed(3)).Run(mk, 200)
	if err != nil {
		t.Fatal(err)
	}
	asy, err := sim.New(g, sim.WithSeed(3)).RunAsync(mk, 200)
	if err != nil {
		t.Fatal(err)
	}
	so, ao := core.Collect(syn.Programs), core.Collect(asy.Programs)
	for v := range so.InSet {
		if so.InSet[v] != ao.InSet[v] || so.X[v] != ao.X[v] {
			t.Fatalf("node %d: async result diverges", v)
		}
	}
}

// Section 4.1 remark: the algorithm extends to the weighted problem.
func TestClaimWeightedExtension(t *testing.T) {
	g := graph.Gnp(100, 0.1, 4)
	costs := make([]float64, 100)
	for v := range costs {
		costs[v] = 1 + float64(v%9)
	}
	res, err := core.SolveWeighted(g, core.WeightedOptions{K: 2, T: 3, Seed: 1, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckKFoldVector(g, res.InSet, res.K, verify.ClosedPP); err != nil {
		t.Fatal(err)
	}
}

// Final remark of Section 4: the global-Δ assumption can be dropped.
func TestClaimLocalDelta(t *testing.T) {
	g := graph.PreferentialAttachment(120, 2, 7)
	sol, err := SolveKMDS(g, 2, WithSeed(5), WithLocalDelta())
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, sol, 2, ClosedPP); err != nil {
		t.Fatal(err)
	}
}

// Lemma 4.4 under LocalDelta: the dual certificate remains feasible up to
// the global-Δ κ = t(Δ+1)^{1/t} even when thresholds use per-node 2-hop
// local degrees, because every local Δ_v is bounded by the global Δ and
// the per-phase overshoot argument only needs (Δ_v+1)^{1/t} ≤ (Δ+1)^{1/t}
// (see the Kappa field documentation in internal/core). Degree-skewed
// graphs make the local/global gap as large as possible.
func TestClaimLocalDeltaDualCertificate(t *testing.T) {
	graphs := []*graph.Graph{
		graph.PreferentialAttachment(150, 2, 7),
		graph.Star(60),
		graph.Gnp(120, 0.08, 3),
	}
	for gi, g := range graphs {
		for _, tt := range []int{1, 2, 3} {
			k := core.EffectiveDemands(g, 2)
			res, err := core.SolveFractional(g, k, core.FractionalOptions{T: tt, LocalDelta: true})
			if err != nil {
				t.Fatal(err)
			}
			// Dual-fitting identity (Lemma 4.3) is threshold-agnostic.
			if d := math.Abs(res.DualObjective(k) - res.BetaSum); d > 1e-8*(1+math.Abs(res.BetaSum)) {
				t.Errorf("graph %d t=%d: dual-fitting residual %v", gi, tt, d)
			}
			c := lp.FromGraph(g, k)
			if err := c.CheckDualNonNegative(res.Y, res.Z, 1e-9); err != nil {
				t.Errorf("graph %d t=%d: %v", gi, tt, err)
			}
			if v := c.DualViolation(res.Y, res.Z); v > res.Kappa+1e-9 {
				t.Errorf("graph %d t=%d: local-Δ dual violation %v exceeds global-Δ κ %v",
					gi, tt, v, res.Kappa)
			}
			// The certificate still lower-bounds OPT_f via weak duality.
			_, opt, err := c.SolveFractional()
			if err != nil {
				t.Fatal(err)
			}
			if cert := res.DualObjective(k) / res.Kappa; cert > opt+1e-6 {
				t.Errorf("graph %d t=%d: certificate %v exceeds OPT_f %v", gi, tt, cert, opt)
			}
		}
	}
}
