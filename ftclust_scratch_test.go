package ftclust

import (
	"reflect"
	"testing"
)

// WithScratch must not change results: scratch-backed solves are
// bit-identical to plain ones, across instances reusing one arena.
func TestWithScratchBitIdentical(t *testing.T) {
	sc := NewScratch()
	for _, seed := range []int64{1, 2, 3} {
		g, err := GenerateGraph("gnp", 200, 8, seed)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := SolveKMDS(g, 2, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := SolveKMDS(g, 2, WithSeed(seed), WithScratch(sc))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Members, pooled.Members) {
			t.Errorf("seed %d: members differ with scratch", seed)
		}
		if plain.FractionalObjective != pooled.FractionalObjective ||
			plain.CertifiedLowerBound != pooled.CertifiedLowerBound {
			t.Errorf("seed %d: objective/bound differ with scratch", seed)
		}
		if err := Verify(g, pooled, 2, ClosedPP); err != nil {
			t.Errorf("seed %d: scratch solution infeasible: %v", seed, err)
		}
	}
}

// Members survives arena reuse (it is a fresh copy), while InSet is
// documented to alias the scratch.
func TestWithScratchMembersSurviveReuse(t *testing.T) {
	sc := NewScratch()
	g1, _ := GenerateGraph("gnp", 150, 8, 1)
	g2, _ := GenerateGraph("grid", 144, 4, 0)
	s1, err := SolveKMDS(g1, 2, WithSeed(1), WithScratch(sc))
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]NodeID(nil), s1.Members...)
	if _, err := SolveKMDS(g2, 3, WithSeed(2), WithScratch(sc)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(saved, s1.Members) {
		t.Error("Members must be a fresh copy unaffected by arena reuse")
	}
}
