package ftclust

import "testing"

func TestSolveWeightedKMDS(t *testing.T) {
	g, err := GenerateGraph("gnp", 100, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]float64, g.NumNodes())
	for v := range costs {
		costs[v] = 1 + float64(v%7)
	}
	sol, err := SolveWeightedKMDS(g, 2, costs, WithSeed(3), WithT(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, sol, 2, ClosedPP); err != nil {
		t.Errorf("weighted solution: %v", err)
	}
	if _, err := SolveWeightedKMDS(g, 0, costs); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := SolveWeightedKMDS(g, 2, costs[:3]); err == nil {
		t.Error("short cost vector should fail")
	}
}

func TestConnectBackbone(t *testing.T) {
	pts := UniformDeployment(400, 5, 6)
	sol, g, err := SolveUDGKMDS(pts, 2, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	backbone, err := ConnectBackbone(g, sol)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnectedBackbone(g, backbone) {
		t.Error("backbone not connected")
	}
	if err := Verify(g, backbone, 2, ClosedPP); err != nil {
		t.Errorf("backbone lost domination: %v", err)
	}
	if backbone.Size() < sol.Size() {
		t.Error("backbone shrank")
	}
	// The input solution must be untouched.
	if err := Verify(g, sol, 2, ClosedPP); err != nil {
		t.Errorf("input mutated: %v", err)
	}
}

func TestConnectBackboneRejectsGarbage(t *testing.T) {
	g, _ := GenerateGraph("ring", 10, 2, 1)
	bogus := &Solution{InSet: make([]bool, 10)}
	if _, err := ConnectBackbone(g, bogus); err == nil {
		t.Error("empty set on a ring is not dominating; must be rejected")
	}
}
