package ftclust

import "testing"

// Regression test for the Verify/EffectiveDemands consistency contract: on
// graphs with nodes of degree < k the solvers optimize against capped
// demands min(k, |N_v|), and Verify must judge the solution against the
// same capped vector — a solver-feasible solution must never fail Verify.
func TestVerifyCapsDemandsOnLowDegreeGraphs(t *testing.T) {
	star, err := NewGraph(6, []Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}, {U: 0, V: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	path, err := NewGraph(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*Graph{"star": star, "path": path} {
		for _, seed := range []int64{1, 2, 3} {
			sol, err := SolveKMDS(g, 3, WithSeed(seed))
			if err != nil {
				t.Fatalf("%s seed=%d: SolveKMDS: %v", name, seed, err)
			}
			// k=3 exceeds the closed-neighborhood size 2 of the leaves /
			// endpoints; Verify must apply the solver's cap, not raw k.
			if err := Verify(g, sol, 3, ClosedPP); err != nil {
				t.Errorf("%s seed=%d: feasible solution fails Verify(ClosedPP): %v", name, seed, err)
			}
			if err := Verify(g, sol, 3, Standard); err != nil {
				t.Errorf("%s seed=%d: feasible solution fails Verify(Standard): %v", name, seed, err)
			}
		}
	}
	// Sanity: Verify still rejects genuinely infeasible solutions.
	empty := &Solution{InSet: make([]bool, star.NumNodes())}
	if err := Verify(star, empty, 3, ClosedPP); err == nil {
		t.Error("empty solution should fail Verify")
	}
}

// WithWorkers must not change any observable output of the public API.
func TestWithWorkersBitIdentical(t *testing.T) {
	g, err := GenerateGraph("powerlaw", 300, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := SolveKMDS(g, 2, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	par, err := SolveKMDS(g, 2, WithSeed(5), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.InSet) != len(par.InSet) {
		t.Fatal("length mismatch")
	}
	for v := range seq.InSet {
		if seq.InSet[v] != par.InSet[v] {
			t.Fatalf("node %d: InSet diverges with WithWorkers", v)
		}
	}
	if seq.FractionalObjective != par.FractionalObjective ||
		seq.CertifiedLowerBound != par.CertifiedLowerBound ||
		seq.Rounds != par.Rounds {
		t.Error("solution metadata diverges with WithWorkers")
	}

	costs := make([]float64, g.NumNodes())
	for v := range costs {
		costs[v] = 1 + float64(v%5)
	}
	wseq, err := SolveWeightedKMDS(g, 2, costs, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	wpar, err := SolveWeightedKMDS(g, 2, costs, WithSeed(5), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for v := range wseq.InSet {
		if wseq.InSet[v] != wpar.InSet[v] {
			t.Fatalf("node %d: weighted InSet diverges with WithWorkers", v)
		}
	}
}

// WithBitset must not change any observable output either: the packed
// kernels scan candidates in the same ascending order as the CSR path.
func TestWithBitsetBitIdentical(t *testing.T) {
	g, err := GenerateGraph("gnp", 250, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]float64, g.NumNodes())
	for v := range costs {
		costs[v] = 1 + float64(v%5)
	}
	for _, workers := range []int{1, 4} {
		off, err := SolveKMDS(g, 3, WithSeed(5), WithWorkers(workers), WithBitset(BitsetOff))
		if err != nil {
			t.Fatal(err)
		}
		on, err := SolveKMDS(g, 3, WithSeed(5), WithWorkers(workers), WithBitset(BitsetOn))
		if err != nil {
			t.Fatal(err)
		}
		for v := range off.InSet {
			if off.InSet[v] != on.InSet[v] {
				t.Fatalf("workers=%d node %d: InSet diverges with WithBitset", workers, v)
			}
		}
		woff, err := SolveWeightedKMDS(g, 2, costs, WithSeed(5), WithWorkers(workers), WithBitset(BitsetOff))
		if err != nil {
			t.Fatal(err)
		}
		won, err := SolveWeightedKMDS(g, 2, costs, WithSeed(5), WithWorkers(workers), WithBitset(BitsetOn))
		if err != nil {
			t.Fatal(err)
		}
		for v := range woff.InSet {
			if woff.InSet[v] != won.InSet[v] {
				t.Fatalf("workers=%d node %d: weighted InSet diverges with WithBitset", workers, v)
			}
		}
	}
}

// WithFloat32 trades per-entry precision for bandwidth but must keep the
// integral solution exactly feasible and stay deterministic.
func TestWithFloat32FeasibleAndDeterministic(t *testing.T) {
	g, err := GenerateGraph("gnp", 400, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := SolveKMDS(g, 2, WithSeed(3), WithFloat32())
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, a, 2, ClosedPP); err != nil {
		t.Fatalf("float32 solution fails Verify: %v", err)
	}
	b, err := SolveKMDS(g, 2, WithSeed(3), WithFloat32(), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InSet {
		if a.InSet[v] != b.InSet[v] {
			t.Fatalf("node %d: float32 InSet diverges across worker counts", v)
		}
	}
	if a.FractionalObjective != b.FractionalObjective {
		t.Error("float32 objective diverges across worker counts")
	}
}

// SolveWeightedKMDS must report the engine-derived round count (2t² + 4),
// not a façade-side reconstruction.
func TestWeightedRoundsDerivedFromEngine(t *testing.T) {
	g, err := GenerateGraph("gnp", 80, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]float64, g.NumNodes())
	for v := range costs {
		costs[v] = 1 + float64(v%4)
	}
	for _, tt := range []int{1, 2, 4} {
		sol, err := SolveWeightedKMDS(g, 2, costs, WithT(tt))
		if err != nil {
			t.Fatal(err)
		}
		if want := 2*tt*tt + 4; sol.Rounds != want {
			t.Errorf("t=%d: Rounds = %d, want %d", tt, sol.Rounds, want)
		}
		if sol.CertifiedLowerBound != 0 {
			t.Errorf("t=%d: weighted path promises no dual bound, got %v", tt, sol.CertifiedLowerBound)
		}
	}
}
