package ftclust

import (
	"reflect"
	"testing"
)

// WithObserver surfaces the per-phase breakdown and the solve summary at
// the façade, and never changes the solution.
func TestWithObserverFacade(t *testing.T) {
	g, err := GenerateGraph("gnp", 250, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := SolveKMDS(g, 2, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	var phases []SolvePhaseInfo
	var stats SolveStats
	obs := &SolveObserver{
		OnPhase: func(p SolvePhaseInfo) { phases = append(phases, p) },
		OnDone:  func(s SolveStats) { stats = s },
	}
	observed, err := SolveKMDS(g, 2, WithSeed(4), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Members, observed.Members) {
		t.Fatal("observer changed the solution")
	}
	if len(phases) != 3 {
		t.Fatalf("phase callbacks = %d, want 3", len(phases))
	}
	// The summary must agree with the Solution's own certificate fields.
	if stats.LPRounds+4 != observed.Rounds {
		t.Errorf("LPRounds = %d vs Solution.Rounds = %d", stats.LPRounds, observed.Rounds)
	}
	if stats.Kappa != observed.Kappa || stats.DualLowerBound != observed.CertifiedLowerBound {
		t.Errorf("certificate mismatch: stats %+v vs solution κ=%v lb=%v",
			stats, observed.Kappa, observed.CertifiedLowerBound)
	}
	if stats.FractionalObjective != observed.FractionalObjective {
		t.Errorf("objective mismatch: %v vs %v", stats.FractionalObjective, observed.FractionalObjective)
	}
}

// WithObserver(nil) is the documented un-instrumented path.
func TestWithObserverNil(t *testing.T) {
	g, err := GenerateGraph("gnp", 150, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := SolveKMDS(g, 2, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	pooled, err := SolveKMDS(g, 2, WithSeed(2), WithScratch(sc), WithObserver(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Members, pooled.Members) {
		t.Fatal("WithObserver(nil) changed the solution")
	}
}
